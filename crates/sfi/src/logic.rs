//! Two-valued, levelized gate-level simulation of a netlist.
//!
//! Unlike the SART analysis (which is function-agnostic, §4.1), fault
//! injection needs real logic values so that masking happens naturally:
//! gates evaluate their boolean functions, flops hold state, enabled flops
//! only load when their enable is high. Primary-input stimulus and initial
//! state are *pure functions* of a seed, so the golden and faulty copies of
//! a paired simulation observe identical inputs without sharing RNG state.

use seqavf_netlist::graph::{GateOp, Netlist, NodeId, NodeKind};

/// SplitMix64 — a high-quality pure hash used for stimulus and initial
/// state.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A two-valued simulator for one netlist.
#[derive(Debug, Clone)]
pub struct LogicSim<'nl> {
    nl: &'nl Netlist,
    seed: u64,
    /// Current value of every node.
    state: Vec<bool>,
    /// Evaluation order for combinational (and pass-through output) nodes.
    comb_order: Vec<NodeId>,
    /// Current cycle number.
    cycle: u64,
}

impl<'nl> LogicSim<'nl> {
    /// Creates a simulator with seed-derived initial state and evaluates
    /// cycle 0's combinational logic.
    pub fn new(nl: &'nl Netlist, seed: u64) -> Self {
        let comb_order = comb_topo(nl);
        let mut state = vec![false; nl.node_count()];
        for id in nl.nodes() {
            state[id.index()] = match nl.kind(id) {
                NodeKind::Seq { .. } | NodeKind::StructCell { .. } => {
                    splitmix64(seed ^ (id.index() as u64).wrapping_mul(0x517c_c1b7_2722_0a95)) & 1
                        == 1
                }
                _ => false,
            };
        }
        let mut sim = LogicSim {
            nl,
            seed,
            state,
            comb_order,
            cycle: 0,
        };
        sim.drive_inputs();
        sim.eval_comb();
        sim
    }

    /// The netlist being simulated.
    pub fn netlist(&self) -> &'nl Netlist {
        self.nl
    }

    /// Current cycle number (0 after construction).
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Current value of a node.
    pub fn value(&self, id: NodeId) -> bool {
        self.state[id.index()]
    }

    /// Full state vector (indexed by [`NodeId::index`]).
    pub fn state(&self) -> &[bool] {
        &self.state
    }

    /// Flips the value of one node in place (fault injection). Flipping a
    /// sequential or structure cell changes stored state; combinational
    /// flips would be overwritten at the next evaluation, so callers should
    /// inject into state-holding nodes.
    pub fn flip(&mut self, id: NodeId) {
        self.state[id.index()] = !self.state[id.index()];
        // Re-propagate so downstream combinational logic sees the flip
        // within the injection cycle.
        self.eval_comb();
    }

    /// Flips several state bits at once (a multi-bit SEU burst from one
    /// particle strike) and re-propagates combinational logic once. The
    /// per-bit semantics match [`LogicSim::flip`]; batching only avoids
    /// re-evaluating the combinational cone per bit.
    pub fn flip_many(&mut self, ids: &[NodeId]) {
        for &id in ids {
            self.state[id.index()] = !self.state[id.index()];
        }
        self.eval_comb();
    }

    /// Advances one clock cycle: sequential/structure state loads from the
    /// current combinational values, inputs advance to the next stimulus
    /// vector, and combinational logic re-evaluates.
    pub fn step(&mut self) {
        // Capture next-state for all state elements from current values.
        let mut next: Vec<(usize, bool)> = Vec::new();
        for id in self.nl.nodes() {
            match self.nl.kind(id) {
                NodeKind::Seq { kind, has_enable } => {
                    let ins = self.nl.fanin(id);
                    let d = self.state[ins[0].index()];
                    let load = if has_enable {
                        self.state[ins[1].index()]
                    } else {
                        true
                    };
                    // Latches are modeled edge-equivalently: a
                    // transparent-phase latch behaves as a flop at this
                    // cycle granularity.
                    let _ = kind;
                    if load {
                        next.push((id.index(), d));
                    }
                }
                NodeKind::StructCell { .. } => {
                    let ins = self.nl.fanin(id);
                    if !ins.is_empty() {
                        // Multi-ported writes: rotate the serviced port by
                        // cycle so every writer influences stored state.
                        let w = ins[(self.cycle as usize) % ins.len()];
                        next.push((id.index(), self.state[w.index()]));
                    }
                }
                _ => {}
            }
        }
        for (i, v) in next {
            self.state[i] = v;
        }
        self.cycle += 1;
        self.drive_inputs();
        self.eval_comb();
    }

    /// Runs `n` cycles.
    pub fn run(&mut self, n: u64) {
        for _ in 0..n {
            self.step();
        }
    }

    fn drive_inputs(&mut self) {
        for id in self.nl.nodes() {
            if matches!(self.nl.kind(id), NodeKind::Input) {
                let h = splitmix64(
                    self.seed
                        ^ self.cycle.wrapping_mul(0x2545_f491_4f6c_dd1d)
                        ^ (id.index() as u64).wrapping_mul(0x9e37_79b9),
                );
                self.state[id.index()] = h & 1 == 1;
            }
        }
    }

    fn eval_comb(&mut self) {
        for &id in &self.comb_order {
            let v = match self.nl.kind(id) {
                NodeKind::Comb(op) => {
                    let ins = self.nl.fanin(id);
                    eval_gate(op, ins, &self.state)
                }
                NodeKind::Output => {
                    let ins = self.nl.fanin(id);
                    self.state[ins[0].index()]
                }
                _ => continue,
            };
            self.state[id.index()] = v;
        }
    }
}

fn eval_gate(op: GateOp, ins: &[NodeId], state: &[bool]) -> bool {
    let v = |i: usize| state[ins[i].index()];
    match op {
        GateOp::Buf => v(0),
        GateOp::Not => !v(0),
        GateOp::And => ins.iter().all(|i| state[i.index()]),
        GateOp::Or => ins.iter().any(|i| state[i.index()]),
        GateOp::Nand => !ins.iter().all(|i| state[i.index()]),
        GateOp::Nor => !ins.iter().any(|i| state[i.index()]),
        GateOp::Xor => ins.iter().filter(|i| state[i.index()]).count() % 2 == 1,
        GateOp::Xnor => ins.iter().filter(|i| state[i.index()]).count() % 2 == 0,
        GateOp::Mux => {
            if v(0) {
                v(2)
            } else {
                v(1)
            }
        }
        GateOp::Const0 => false,
        GateOp::Const1 => true,
    }
}

/// Topological order over combinational and output nodes (state elements
/// and inputs are level 0 and excluded).
fn comb_topo(nl: &Netlist) -> Vec<NodeId> {
    let is_comb_like = |id: NodeId| matches!(nl.kind(id), NodeKind::Comb(_) | NodeKind::Output);
    let n = nl.node_count();
    let mut indeg = vec![0u32; n];
    for id in nl.nodes() {
        if !is_comb_like(id) {
            continue;
        }
        indeg[id.index()] = nl.fanin(id).iter().filter(|&&f| is_comb_like(f)).count() as u32;
    }
    let mut queue: Vec<NodeId> = nl
        .nodes()
        .filter(|&id| is_comb_like(id) && indeg[id.index()] == 0)
        .collect();
    let mut order = Vec::new();
    let mut head = 0;
    while head < queue.len() {
        let u = queue[head];
        head += 1;
        order.push(u);
        for &v in nl.fanout(u) {
            if !is_comb_like(v) {
                continue;
            }
            indeg[v.index()] -= 1;
            if indeg[v.index()] == 0 {
                queue.push(v);
            }
        }
    }
    debug_assert_eq!(
        order.len(),
        nl.nodes().filter(|&id| is_comb_like(id)).count(),
        "combinational subgraph must be acyclic"
    );
    order
}

/// An analytical error-propagation model: instead of re-simulating a
/// golden/faulty trace pair per injection, masking **probabilities** are
/// propagated through the netlist once, and each trial reduces to a
/// Bernoulli draw against the target's precomputed propagation
/// probability.
///
/// This is the propagation-probability SER technique (Asadi & Tahoori)
/// adapted to the sequential-AVF setting:
///
/// 1. **Signal probabilities.** Every node's probability of being `1` is
///    computed by evaluating gate functions over probabilities (inputs are
///    0.5 by the stimulus construction, gates assume independent fan-ins)
///    and iterating the sequential feedback to a quasi-fixpoint.
/// 2. **Propagation probabilities.** The probability that a flipped bit
///    reaches an observation point is relaxed backward from the
///    observation points: an edge `u → c` is *sensitized* with the
///    probability that `c`'s other inputs let the flip through (AND needs
///    the side inputs at 1, OR at 0, XOR always propagates, a MUX select
///    flip propagates only when the data inputs differ, an enabled flop
///    loads with its enable probability), and fan-out paths combine as
///    independent alternatives. The relaxation is monotone from 0 and
///    bounded by 1, so it converges; loops simply saturate.
///
/// The model is built **once per netlist** (two relaxations over the
/// graph); a million-trial campaign then costs one RNG draw per trial.
/// The price is approximation error wherever reconvergent fan-out
/// correlates signals — on fan-out-tree netlists the model is exact (see
/// the oracle property tests).
#[derive(Debug, Clone)]
pub struct PropModel {
    /// P(node = 1), indexed by [`NodeId::index`].
    signal: Vec<f64>,
    /// P(flip at node reaches an observation point), same indexing.
    prop: Vec<f64>,
}

/// Relaxation rounds for the signal-probability fixpoint.
const SIGNAL_ROUNDS: usize = 8;
/// Cap on backward propagation-probability relaxation rounds.
const PROP_ROUNDS: usize = 64;
/// Convergence threshold for the backward relaxation.
const PROP_EPSILON: f64 = 1e-12;

impl PropModel {
    /// Builds the model for `nl` with observation points `observed`
    /// (typically [`crate::inject::observation_points`]).
    pub fn build(nl: &Netlist, observed: &[NodeId]) -> PropModel {
        let n = nl.node_count();
        let comb_order = comb_topo(nl);

        // Phase 1: signal probabilities.
        let mut signal = vec![0.5f64; n];
        for _ in 0..SIGNAL_ROUNDS {
            for &id in &comb_order {
                signal[id.index()] = match nl.kind(id) {
                    NodeKind::Comb(op) => eval_gate_prob(op, nl.fanin(id), &signal),
                    NodeKind::Output => signal[nl.fanin(id)[0].index()],
                    _ => continue,
                };
            }
            // Sequential next-state, mirroring `LogicSim::step`.
            let mut next: Vec<(usize, f64)> = Vec::new();
            for id in nl.nodes() {
                match nl.kind(id) {
                    NodeKind::Seq { has_enable, .. } => {
                        let ins = nl.fanin(id);
                        let d = signal[ins[0].index()];
                        let p = if has_enable {
                            let e = signal[ins[1].index()];
                            e * d + (1.0 - e) * signal[id.index()]
                        } else {
                            d
                        };
                        next.push((id.index(), p));
                    }
                    NodeKind::StructCell { .. } => {
                        let ins = nl.fanin(id);
                        if !ins.is_empty() {
                            // Ports are serviced round-robin: the stored
                            // probability averages the writers.
                            let sum: f64 = ins.iter().map(|w| signal[w.index()]).sum();
                            next.push((id.index(), sum / ins.len() as f64));
                        }
                    }
                    _ => {}
                }
            }
            for (i, p) in next {
                signal[i] = p;
            }
        }

        // Phase 2: backward propagation probabilities.
        let mut prop = vec![0.0f64; n];
        let mut is_observed = vec![false; n];
        for &o in observed {
            is_observed[o.index()] = true;
            prop[o.index()] = 1.0;
        }
        for _ in 0..PROP_ROUNDS {
            let mut max_delta = 0.0f64;
            // Sweep in reverse node order — convergence does not depend on
            // ordering, it only shortens the relaxation.
            for id in nl.nodes().collect::<Vec<_>>().into_iter().rev() {
                if is_observed[id.index()] {
                    continue;
                }
                let mut masked_all = 1.0f64;
                for &c in nl.fanout(id) {
                    let s = edge_sensitization(nl, id, c, &signal);
                    masked_all *= 1.0 - s * prop[c.index()];
                }
                let p = 1.0 - masked_all;
                max_delta = max_delta.max((p - prop[id.index()]).abs());
                prop[id.index()] = p;
            }
            if max_delta < PROP_EPSILON {
                break;
            }
        }
        PropModel { signal, prop }
    }

    /// P(node = 1) under random stimulus.
    pub fn signal_probability(&self, id: NodeId) -> f64 {
        self.signal[id.index()]
    }

    /// P(a flip at `id` reaches an observation point).
    pub fn propagation(&self, id: NodeId) -> f64 {
        self.prop[id.index()]
    }

    /// P(at least one bit of a multi-bit burst reaches an observation
    /// point), treating the per-bit propagation paths as independent.
    pub fn burst_propagation(&self, bits: &[NodeId]) -> f64 {
        let masked: f64 = bits.iter().map(|&b| 1.0 - self.prop[b.index()]).product();
        1.0 - masked
    }
}

/// Gate output probability assuming independent inputs.
fn eval_gate_prob(op: GateOp, ins: &[NodeId], signal: &[f64]) -> f64 {
    let v = |i: usize| signal[ins[i].index()];
    let all_one = || ins.iter().map(|i| signal[i.index()]).product::<f64>();
    let all_zero = || ins.iter().map(|i| 1.0 - signal[i.index()]).product::<f64>();
    match op {
        GateOp::Buf => v(0),
        GateOp::Not => 1.0 - v(0),
        GateOp::And => all_one(),
        GateOp::Nand => 1.0 - all_one(),
        GateOp::Or => 1.0 - all_zero(),
        GateOp::Nor => all_zero(),
        GateOp::Xor | GateOp::Xnor => {
            // P(odd number of ones) folds pairwise.
            let odd = ins
                .iter()
                .map(|i| signal[i.index()])
                .fold(0.0f64, |acc, p| acc * (1.0 - p) + (1.0 - acc) * p);
            if op == GateOp::Xor {
                odd
            } else {
                1.0 - odd
            }
        }
        GateOp::Mux => v(0) * v(2) + (1.0 - v(0)) * v(1),
        GateOp::Const0 => 0.0,
        GateOp::Const1 => 1.0,
    }
}

/// Probability that a flip on `from` is visible at `to`'s output given
/// `to`'s other inputs (the edge's sensitization probability).
fn edge_sensitization(nl: &Netlist, from: NodeId, to: NodeId, signal: &[f64]) -> f64 {
    let ins = nl.fanin(to);
    match nl.kind(to) {
        NodeKind::Output => 1.0,
        NodeKind::Seq { has_enable, .. } => {
            if has_enable && ins.len() > 1 && ins[1] == from && ins[0] != from {
                // A flipped enable matters only when the data input and
                // the stored bit differ.
                let d = signal[ins[0].index()];
                let q = signal[to.index()];
                d * (1.0 - q) + (1.0 - d) * q
            } else if has_enable {
                // Data path: the flip is latched when the enable is high.
                signal[ins[1].index()]
            } else {
                1.0
            }
        }
        NodeKind::StructCell { .. } => {
            // Round-robin write ports: `from` is serviced 1/k of the time.
            if ins.is_empty() {
                0.0
            } else {
                1.0 / ins.len() as f64
            }
        }
        NodeKind::Comb(op) => {
            let others = || {
                ins.iter()
                    .filter(|&&i| i != from)
                    .map(|i| signal[i.index()])
            };
            match op {
                GateOp::Buf | GateOp::Not => 1.0,
                GateOp::And | GateOp::Nand => others().product(),
                GateOp::Or | GateOp::Nor => others().map(|p| 1.0 - p).product(),
                GateOp::Xor | GateOp::Xnor => 1.0,
                GateOp::Mux => {
                    if ins[0] == from {
                        // Select flip: propagates when the data legs differ.
                        let d0 = signal[ins[1].index()];
                        let d1 = signal[ins[2].index()];
                        d0 * (1.0 - d1) + (1.0 - d0) * d1
                    } else if ins[1] == from {
                        1.0 - signal[ins[0].index()]
                    } else {
                        signal[ins[0].index()]
                    }
                }
                GateOp::Const0 | GateOp::Const1 => 0.0,
            }
        }
        _ => 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqavf_netlist::flatten::parse_netlist;

    fn sim(text: &str, seed: u64) -> (Netlist, LogicSim<'static>) {
        let nl = Box::leak(Box::new(parse_netlist(text).unwrap()));
        (nl.clone(), LogicSim::new(nl, seed))
    }

    #[test]
    fn inverter_chain_propagates() {
        let text = r"
.design t
.fub f
  .input i
  .gate not g1 i
  .gate not g2 g1
  .output o g2
.endfub
.end
";
        let (nl, mut s) = sim(text, 7);
        for _ in 0..8 {
            let i = s.value(nl.lookup("f.i").unwrap());
            let o = s.value(nl.lookup("f.o").unwrap());
            assert_eq!(i, o, "double inversion is identity");
            let g1 = s.value(nl.lookup("f.g1").unwrap());
            assert_eq!(g1, !i);
            s.step();
        }
    }

    #[test]
    fn gate_functions_correct() {
        let text = r"
.design t
.fub f
  .input a
  .input b
  .gate and g_and a b
  .gate or g_or a b
  .gate nand g_nand a b
  .gate nor g_nor a b
  .gate xor g_xor a b
  .gate xnor g_xnor a b
  .gate mux g_mux a b g_xor
  .gate const0 zero
  .gate const1 one
  .output o g_and
.endfub
.end
";
        let (nl, mut s) = sim(text, 3);
        for _ in 0..16 {
            let a = s.value(nl.lookup("f.a").unwrap());
            let b = s.value(nl.lookup("f.b").unwrap());
            assert_eq!(s.value(nl.lookup("f.g_and").unwrap()), a && b);
            assert_eq!(s.value(nl.lookup("f.g_or").unwrap()), a || b);
            assert_eq!(s.value(nl.lookup("f.g_nand").unwrap()), !(a && b));
            assert_eq!(s.value(nl.lookup("f.g_nor").unwrap()), !(a || b));
            assert_eq!(s.value(nl.lookup("f.g_xor").unwrap()), a ^ b);
            assert_eq!(s.value(nl.lookup("f.g_xnor").unwrap()), !(a ^ b));
            let mux = s.value(nl.lookup("f.g_mux").unwrap());
            assert_eq!(mux, if a { a ^ b } else { b }, "mux(sel=a, d0=b, d1=xor)");
            assert!(!s.value(nl.lookup("f.zero").unwrap()));
            assert!(s.value(nl.lookup("f.one").unwrap()));
            s.step();
        }
    }

    #[test]
    fn flop_delays_by_one_cycle() {
        let text = r"
.design t
.fub f
  .input i
  .flop q i
  .output o q
.endfub
.end
";
        let (nl, mut s) = sim(text, 11);
        let i_node = nl.lookup("f.i").unwrap();
        let q_node = nl.lookup("f.q").unwrap();
        let mut prev_i = s.value(i_node);
        for _ in 0..12 {
            s.step();
            assert_eq!(s.value(q_node), prev_i, "flop holds previous input");
            prev_i = s.value(i_node);
        }
    }

    #[test]
    fn enabled_flop_holds_when_disabled() {
        let text = r"
.design t
.fub f
  .input d
  .gate const0 never
  .flop q d never
  .output o q
.endfub
.end
";
        let (nl, mut s) = sim(text, 5);
        let q = nl.lookup("f.q").unwrap();
        let initial = s.value(q);
        for _ in 0..10 {
            s.step();
            assert_eq!(s.value(q), initial, "enable low: state must hold");
        }
    }

    #[test]
    fn struct_cell_loads_from_writer() {
        let text = r"
.design t
.fub f
  .input i
  .struct st 1
  .sw st[0] i
  .output o st[0]
.endfub
.end
";
        let (nl, mut s) = sim(text, 9);
        let i_node = nl.lookup("f.i").unwrap();
        let cell = nl.lookup("f.st[0]").unwrap();
        let mut prev = s.value(i_node);
        for _ in 0..10 {
            s.step();
            assert_eq!(s.value(cell), prev);
            prev = s.value(i_node);
        }
    }

    #[test]
    fn same_seed_reproduces_exactly() {
        let text = r"
.design t
.fub f
  .input i
  .flop q1 i
  .gate xor g q1 i
  .flop q2 g
  .output o q2
.endfub
.end
";
        let (_, mut a) = sim(text, 42);
        let (_, mut b) = sim(text, 42);
        for _ in 0..50 {
            assert_eq!(a.state(), b.state());
            a.step();
            b.step();
        }
    }

    #[test]
    fn different_seeds_differ() {
        let text = ".design t\n.fub f\n.input i\n.flop q i\n.output o q\n.endfub\n.end\n";
        let (_, a) = sim(text, 1);
        let (_, b) = sim(text, 2);
        // Initial flop state or stimulus differ with overwhelming
        // probability over 50 cycles.
        let mut a = a;
        let mut b = b;
        let mut any_diff = false;
        for _ in 0..50 {
            if a.state() != b.state() {
                any_diff = true;
                break;
            }
            a.step();
            b.step();
        }
        assert!(any_diff);
    }

    #[test]
    fn flip_changes_state_and_propagates() {
        let text = r"
.design t
.fub f
  .gate const0 zero
  .flop q zero
  .gate not g q
  .output o g
.endfub
.end
";
        let (nl, mut s) = sim(text, 1);
        s.step(); // load q with 0
        let q = nl.lookup("f.q").unwrap();
        let o = nl.lookup("f.o").unwrap();
        assert!(!s.value(q));
        assert!(s.value(o));
        s.flip(q);
        assert!(s.value(q));
        assert!(!s.value(o), "flip must propagate through comb logic");
    }

    #[test]
    fn flip_many_equals_repeated_flips() {
        let text = r"
.design t
.fub f
  .input i
  .flop q1 i
  .flop q2 q1
  .gate xor g q1 q2
  .flop q3 g
  .output o q3
.endfub
.end
";
        let (nl, mut a) = sim(text, 13);
        let mut b = a.clone();
        let q1 = nl.lookup("f.q1").unwrap();
        let q2 = nl.lookup("f.q2").unwrap();
        a.flip(q1);
        a.flip(q2);
        b.flip_many(&[q1, q2]);
        assert_eq!(a.state(), b.state());
    }

    #[test]
    fn prop_model_exact_on_fanout_trees() {
        // Live chain, dangling flop, dead subtree: propagation is exactly
        // 1 or 0 on a single-fanin tree.
        let text = r"
.design t
.fub f
  .input i
  .flop q1 i
  .gate not g1 q1
  .flop q2 g1
  .flop dangling q1
  .flop dead2 dangling
  .output o q2
.endfub
.end
";
        let nl = parse_netlist(text).unwrap();
        let observed = crate::inject::observation_points(&nl);
        let m = PropModel::build(&nl, &observed);
        assert_eq!(m.propagation(nl.lookup("f.q1").unwrap()), 1.0);
        assert_eq!(m.propagation(nl.lookup("f.q2").unwrap()), 1.0);
        assert_eq!(m.propagation(nl.lookup("f.dangling").unwrap()), 0.0);
        assert_eq!(m.propagation(nl.lookup("f.dead2").unwrap()), 0.0);
    }

    #[test]
    fn prop_model_sees_and_gate_masking() {
        // q1 AND const-0 can never propagate; q1 AND a random input
        // propagates with the side input's signal probability (0.5).
        let text = r"
.design t
.fub f
  .input i
  .input side
  .gate const0 zero
  .flop q1 i
  .gate and dead q1 zero
  .flop qd dead
  .flop q2 i
  .gate and live q2 side
  .flop ql live
  .output o1 qd
  .output o2 ql
.endfub
.end
";
        let nl = parse_netlist(text).unwrap();
        let observed = crate::inject::observation_points(&nl);
        let m = PropModel::build(&nl, &observed);
        assert_eq!(
            m.propagation(nl.lookup("f.q1").unwrap()),
            0.0,
            "AND-0 fully masks"
        );
        let p = m.propagation(nl.lookup("f.q2").unwrap());
        assert!((p - 0.5).abs() < 1e-9, "AND with a coin-flip side: {p}");
    }

    #[test]
    fn prop_model_burst_combines_paths() {
        let text = r"
.design t
.fub f
  .input i
  .flop q1 i
  .flop dangling q1
  .output o q1
.endfub
.end
";
        let nl = parse_netlist(text).unwrap();
        let observed = crate::inject::observation_points(&nl);
        let m = PropModel::build(&nl, &observed);
        let q1 = nl.lookup("f.q1").unwrap();
        let dang = nl.lookup("f.dangling").unwrap();
        assert_eq!(m.burst_propagation(&[dang]), 0.0);
        assert_eq!(m.burst_propagation(&[dang, q1]), 1.0);
        assert_eq!(m.burst_propagation(&[]), 0.0);
    }
}
