//! Two-valued, levelized gate-level simulation of a netlist.
//!
//! Unlike the SART analysis (which is function-agnostic, §4.1), fault
//! injection needs real logic values so that masking happens naturally:
//! gates evaluate their boolean functions, flops hold state, enabled flops
//! only load when their enable is high. Primary-input stimulus and initial
//! state are *pure functions* of a seed, so the golden and faulty copies of
//! a paired simulation observe identical inputs without sharing RNG state.

use seqavf_netlist::graph::{GateOp, Netlist, NodeId, NodeKind};

/// SplitMix64 — a high-quality pure hash used for stimulus and initial
/// state.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A two-valued simulator for one netlist.
#[derive(Debug, Clone)]
pub struct LogicSim<'nl> {
    nl: &'nl Netlist,
    seed: u64,
    /// Current value of every node.
    state: Vec<bool>,
    /// Evaluation order for combinational (and pass-through output) nodes.
    comb_order: Vec<NodeId>,
    /// Current cycle number.
    cycle: u64,
}

impl<'nl> LogicSim<'nl> {
    /// Creates a simulator with seed-derived initial state and evaluates
    /// cycle 0's combinational logic.
    pub fn new(nl: &'nl Netlist, seed: u64) -> Self {
        let comb_order = comb_topo(nl);
        let mut state = vec![false; nl.node_count()];
        for id in nl.nodes() {
            state[id.index()] = match nl.kind(id) {
                NodeKind::Seq { .. } | NodeKind::StructCell { .. } => {
                    splitmix64(seed ^ (id.index() as u64).wrapping_mul(0x517c_c1b7_2722_0a95)) & 1
                        == 1
                }
                _ => false,
            };
        }
        let mut sim = LogicSim {
            nl,
            seed,
            state,
            comb_order,
            cycle: 0,
        };
        sim.drive_inputs();
        sim.eval_comb();
        sim
    }

    /// The netlist being simulated.
    pub fn netlist(&self) -> &'nl Netlist {
        self.nl
    }

    /// Current cycle number (0 after construction).
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Current value of a node.
    pub fn value(&self, id: NodeId) -> bool {
        self.state[id.index()]
    }

    /// Full state vector (indexed by [`NodeId::index`]).
    pub fn state(&self) -> &[bool] {
        &self.state
    }

    /// Flips the value of one node in place (fault injection). Flipping a
    /// sequential or structure cell changes stored state; combinational
    /// flips would be overwritten at the next evaluation, so callers should
    /// inject into state-holding nodes.
    pub fn flip(&mut self, id: NodeId) {
        self.state[id.index()] = !self.state[id.index()];
        // Re-propagate so downstream combinational logic sees the flip
        // within the injection cycle.
        self.eval_comb();
    }

    /// Advances one clock cycle: sequential/structure state loads from the
    /// current combinational values, inputs advance to the next stimulus
    /// vector, and combinational logic re-evaluates.
    pub fn step(&mut self) {
        // Capture next-state for all state elements from current values.
        let mut next: Vec<(usize, bool)> = Vec::new();
        for id in self.nl.nodes() {
            match self.nl.kind(id) {
                NodeKind::Seq { kind, has_enable } => {
                    let ins = self.nl.fanin(id);
                    let d = self.state[ins[0].index()];
                    let load = if has_enable {
                        self.state[ins[1].index()]
                    } else {
                        true
                    };
                    // Latches are modeled edge-equivalently: a
                    // transparent-phase latch behaves as a flop at this
                    // cycle granularity.
                    let _ = kind;
                    if load {
                        next.push((id.index(), d));
                    }
                }
                NodeKind::StructCell { .. } => {
                    let ins = self.nl.fanin(id);
                    if !ins.is_empty() {
                        // Multi-ported writes: rotate the serviced port by
                        // cycle so every writer influences stored state.
                        let w = ins[(self.cycle as usize) % ins.len()];
                        next.push((id.index(), self.state[w.index()]));
                    }
                }
                _ => {}
            }
        }
        for (i, v) in next {
            self.state[i] = v;
        }
        self.cycle += 1;
        self.drive_inputs();
        self.eval_comb();
    }

    /// Runs `n` cycles.
    pub fn run(&mut self, n: u64) {
        for _ in 0..n {
            self.step();
        }
    }

    fn drive_inputs(&mut self) {
        for id in self.nl.nodes() {
            if matches!(self.nl.kind(id), NodeKind::Input) {
                let h = splitmix64(
                    self.seed
                        ^ self.cycle.wrapping_mul(0x2545_f491_4f6c_dd1d)
                        ^ (id.index() as u64).wrapping_mul(0x9e37_79b9),
                );
                self.state[id.index()] = h & 1 == 1;
            }
        }
    }

    fn eval_comb(&mut self) {
        for &id in &self.comb_order {
            let v = match self.nl.kind(id) {
                NodeKind::Comb(op) => {
                    let ins = self.nl.fanin(id);
                    eval_gate(op, ins, &self.state)
                }
                NodeKind::Output => {
                    let ins = self.nl.fanin(id);
                    self.state[ins[0].index()]
                }
                _ => continue,
            };
            self.state[id.index()] = v;
        }
    }
}

fn eval_gate(op: GateOp, ins: &[NodeId], state: &[bool]) -> bool {
    let v = |i: usize| state[ins[i].index()];
    match op {
        GateOp::Buf => v(0),
        GateOp::Not => !v(0),
        GateOp::And => ins.iter().all(|i| state[i.index()]),
        GateOp::Or => ins.iter().any(|i| state[i.index()]),
        GateOp::Nand => !ins.iter().all(|i| state[i.index()]),
        GateOp::Nor => !ins.iter().any(|i| state[i.index()]),
        GateOp::Xor => ins.iter().filter(|i| state[i.index()]).count() % 2 == 1,
        GateOp::Xnor => ins.iter().filter(|i| state[i.index()]).count() % 2 == 0,
        GateOp::Mux => {
            if v(0) {
                v(2)
            } else {
                v(1)
            }
        }
        GateOp::Const0 => false,
        GateOp::Const1 => true,
    }
}

/// Topological order over combinational and output nodes (state elements
/// and inputs are level 0 and excluded).
fn comb_topo(nl: &Netlist) -> Vec<NodeId> {
    let is_comb_like = |id: NodeId| matches!(nl.kind(id), NodeKind::Comb(_) | NodeKind::Output);
    let n = nl.node_count();
    let mut indeg = vec![0u32; n];
    for id in nl.nodes() {
        if !is_comb_like(id) {
            continue;
        }
        indeg[id.index()] = nl.fanin(id).iter().filter(|&&f| is_comb_like(f)).count() as u32;
    }
    let mut queue: Vec<NodeId> = nl
        .nodes()
        .filter(|&id| is_comb_like(id) && indeg[id.index()] == 0)
        .collect();
    let mut order = Vec::new();
    let mut head = 0;
    while head < queue.len() {
        let u = queue[head];
        head += 1;
        order.push(u);
        for &v in nl.fanout(u) {
            if !is_comb_like(v) {
                continue;
            }
            indeg[v.index()] -= 1;
            if indeg[v.index()] == 0 {
                queue.push(v);
            }
        }
    }
    debug_assert_eq!(
        order.len(),
        nl.nodes().filter(|&id| is_comb_like(id)).count(),
        "combinational subgraph must be acyclic"
    );
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqavf_netlist::flatten::parse_netlist;

    fn sim(text: &str, seed: u64) -> (Netlist, LogicSim<'static>) {
        let nl = Box::leak(Box::new(parse_netlist(text).unwrap()));
        (nl.clone(), LogicSim::new(nl, seed))
    }

    #[test]
    fn inverter_chain_propagates() {
        let text = r"
.design t
.fub f
  .input i
  .gate not g1 i
  .gate not g2 g1
  .output o g2
.endfub
.end
";
        let (nl, mut s) = sim(text, 7);
        for _ in 0..8 {
            let i = s.value(nl.lookup("f.i").unwrap());
            let o = s.value(nl.lookup("f.o").unwrap());
            assert_eq!(i, o, "double inversion is identity");
            let g1 = s.value(nl.lookup("f.g1").unwrap());
            assert_eq!(g1, !i);
            s.step();
        }
    }

    #[test]
    fn gate_functions_correct() {
        let text = r"
.design t
.fub f
  .input a
  .input b
  .gate and g_and a b
  .gate or g_or a b
  .gate nand g_nand a b
  .gate nor g_nor a b
  .gate xor g_xor a b
  .gate xnor g_xnor a b
  .gate mux g_mux a b g_xor
  .gate const0 zero
  .gate const1 one
  .output o g_and
.endfub
.end
";
        let (nl, mut s) = sim(text, 3);
        for _ in 0..16 {
            let a = s.value(nl.lookup("f.a").unwrap());
            let b = s.value(nl.lookup("f.b").unwrap());
            assert_eq!(s.value(nl.lookup("f.g_and").unwrap()), a && b);
            assert_eq!(s.value(nl.lookup("f.g_or").unwrap()), a || b);
            assert_eq!(s.value(nl.lookup("f.g_nand").unwrap()), !(a && b));
            assert_eq!(s.value(nl.lookup("f.g_nor").unwrap()), !(a || b));
            assert_eq!(s.value(nl.lookup("f.g_xor").unwrap()), a ^ b);
            assert_eq!(s.value(nl.lookup("f.g_xnor").unwrap()), !(a ^ b));
            let mux = s.value(nl.lookup("f.g_mux").unwrap());
            assert_eq!(mux, if a { a ^ b } else { b }, "mux(sel=a, d0=b, d1=xor)");
            assert!(!s.value(nl.lookup("f.zero").unwrap()));
            assert!(s.value(nl.lookup("f.one").unwrap()));
            s.step();
        }
    }

    #[test]
    fn flop_delays_by_one_cycle() {
        let text = r"
.design t
.fub f
  .input i
  .flop q i
  .output o q
.endfub
.end
";
        let (nl, mut s) = sim(text, 11);
        let i_node = nl.lookup("f.i").unwrap();
        let q_node = nl.lookup("f.q").unwrap();
        let mut prev_i = s.value(i_node);
        for _ in 0..12 {
            s.step();
            assert_eq!(s.value(q_node), prev_i, "flop holds previous input");
            prev_i = s.value(i_node);
        }
    }

    #[test]
    fn enabled_flop_holds_when_disabled() {
        let text = r"
.design t
.fub f
  .input d
  .gate const0 never
  .flop q d never
  .output o q
.endfub
.end
";
        let (nl, mut s) = sim(text, 5);
        let q = nl.lookup("f.q").unwrap();
        let initial = s.value(q);
        for _ in 0..10 {
            s.step();
            assert_eq!(s.value(q), initial, "enable low: state must hold");
        }
    }

    #[test]
    fn struct_cell_loads_from_writer() {
        let text = r"
.design t
.fub f
  .input i
  .struct st 1
  .sw st[0] i
  .output o st[0]
.endfub
.end
";
        let (nl, mut s) = sim(text, 9);
        let i_node = nl.lookup("f.i").unwrap();
        let cell = nl.lookup("f.st[0]").unwrap();
        let mut prev = s.value(i_node);
        for _ in 0..10 {
            s.step();
            assert_eq!(s.value(cell), prev);
            prev = s.value(i_node);
        }
    }

    #[test]
    fn same_seed_reproduces_exactly() {
        let text = r"
.design t
.fub f
  .input i
  .flop q1 i
  .gate xor g q1 i
  .flop q2 g
  .output o q2
.endfub
.end
";
        let (_, mut a) = sim(text, 42);
        let (_, mut b) = sim(text, 42);
        for _ in 0..50 {
            assert_eq!(a.state(), b.state());
            a.step();
            b.step();
        }
    }

    #[test]
    fn different_seeds_differ() {
        let text = ".design t\n.fub f\n.input i\n.flop q i\n.output o q\n.endfub\n.end\n";
        let (_, a) = sim(text, 1);
        let (_, b) = sim(text, 2);
        // Initial flop state or stimulus differ with overwhelming
        // probability over 50 cycles.
        let mut a = a;
        let mut b = b;
        let mut any_diff = false;
        for _ in 0..50 {
            if a.state() != b.state() {
                any_diff = true;
                break;
            }
            a.step();
            b.step();
        }
        assert!(any_diff);
    }

    #[test]
    fn flip_changes_state_and_propagates() {
        let text = r"
.design t
.fub f
  .gate const0 zero
  .flop q zero
  .gate not g q
  .output o g
.endfub
.end
";
        let (nl, mut s) = sim(text, 1);
        s.step(); // load q with 0
        let q = nl.lookup("f.q").unwrap();
        let o = nl.lookup("f.o").unwrap();
        assert!(!s.value(q));
        assert!(s.value(o));
        s.flip(q);
        assert!(s.value(q));
        assert!(!s.value(o), "flip must propagate through comb logic");
    }
}
