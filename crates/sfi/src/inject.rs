//! Golden/faulty paired simulation with single-bit-flip injection (§3.1).

use seqavf_netlist::graph::{Netlist, NodeId, NodeKind};

use crate::logic::LogicSim;

/// Configuration of one injection experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectConfig {
    /// Cycles simulated before the flip (lets state decorrelate from the
    /// seed-derived initial values).
    pub warmup: u64,
    /// Cycles simulated after the flip during which a fault may propagate
    /// to an observation point (the paper's RTL runs used 10,000–50,000;
    /// our netlists are far shallower).
    pub horizon: u64,
    /// Stimulus/initial-state seed.
    pub seed: u64,
}

impl Default for InjectConfig {
    fn default() -> Self {
        InjectConfig {
            warmup: 16,
            horizon: 200,
            seed: 1,
        }
    }
}

/// Outcome of one injection (§3.1's categories).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Outcome {
    /// The fault never reached an observation point and no corrupted state
    /// remains: logically masked.
    Masked,
    /// The fault corrupted an observation point: a user-visible error.
    Error,
    /// The fault is still resident in non-observable state at the end of
    /// the horizon; conservatively counted toward AVF (Equation 2).
    Unknown,
}

/// The observation points for SDC analysis: program-visible state, which
/// for these netlists means the design's primary outputs and the
/// architectural contents of ACE structures.
pub fn observation_points(nl: &Netlist) -> Vec<NodeId> {
    nl.nodes()
        .filter(|&id| match nl.kind(id) {
            NodeKind::Output => nl.fanout(id).is_empty(),
            NodeKind::StructCell { .. } => true,
            _ => false,
        })
        .collect()
}

/// Outcome of an injection when error-detection logic is modeled — the
/// paper's point that "the AVFs for SDC and DUE must be computed
/// separately, since the observability points for faults will be
/// different" (§3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DetailedOutcome {
    /// Fully masked.
    Masked,
    /// Reached a program-visible point undetected: silent data corruption.
    Sdc,
    /// Reached a detector (parity/ECC write port) first: detected
    /// uncorrectable error.
    Due,
    /// Still resident, unobserved, at the horizon.
    Unknown,
}

/// Runs one golden/faulty pair with separate SDC observation points and
/// DUE detectors. Detection is checked first each cycle: a fault caught by
/// a detector raises a machine-check before it can silently corrupt
/// program output.
pub fn run_injection_protected(
    nl: &Netlist,
    target: NodeId,
    config: &InjectConfig,
    sdc_points: &[NodeId],
    detectors: &[NodeId],
) -> DetailedOutcome {
    let mut golden = LogicSim::new(nl, config.seed);
    golden.run(config.warmup);
    let mut faulty = golden.clone();
    faulty.flip(target);

    let observe = |golden: &LogicSim<'_>, faulty: &LogicSim<'_>| {
        if detectors
            .iter()
            .any(|&d| golden.value(d) != faulty.value(d))
        {
            return Some(DetailedOutcome::Due);
        }
        if sdc_points
            .iter()
            .any(|&o| golden.value(o) != faulty.value(o))
        {
            return Some(DetailedOutcome::Sdc);
        }
        None
    };

    for _ in 0..config.horizon {
        if let Some(out) = observe(&golden, &faulty) {
            return out;
        }
        golden.step();
        faulty.step();
    }
    if let Some(out) = observe(&golden, &faulty) {
        return out;
    }
    if golden.state() != faulty.state() {
        DetailedOutcome::Unknown
    } else {
        DetailedOutcome::Masked
    }
}

/// Runs one golden/faulty pair: flip `target` after `warmup` cycles, then
/// watch the observation points for `horizon` cycles.
pub fn run_injection(
    nl: &Netlist,
    target: NodeId,
    config: &InjectConfig,
    observed: &[NodeId],
) -> Outcome {
    run_injection_burst(nl, &[target], config, observed)
}

/// Runs one golden/faulty pair with a **multi-bit SEU burst**: all of
/// `targets` flip in the same cycle, modeling a single energetic particle
/// upsetting several adjacent state bits (the gate-level SET → multi-SEU
/// representation). A one-element burst is exactly [`run_injection`].
pub fn run_injection_burst(
    nl: &Netlist,
    targets: &[NodeId],
    config: &InjectConfig,
    observed: &[NodeId],
) -> Outcome {
    let mut golden = LogicSim::new(nl, config.seed);
    golden.run(config.warmup);
    let mut faulty = golden.clone();
    faulty.flip_many(targets);

    for _ in 0..config.horizon {
        // Check observation points (including combinationally-reached
        // outputs in the injection cycle itself).
        for &o in observed {
            if golden.value(o) != faulty.value(o) {
                return Outcome::Error;
            }
        }
        golden.step();
        faulty.step();
    }
    for &o in observed {
        if golden.value(o) != faulty.value(o) {
            return Outcome::Error;
        }
    }
    if golden.state() != faulty.state() {
        Outcome::Unknown
    } else {
        Outcome::Masked
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqavf_netlist::flatten::parse_netlist;

    #[test]
    fn flip_on_straight_path_to_output_is_an_error() {
        let text = r"
.design t
.fub f
  .input i
  .flop q1 i
  .flop q2 q1
  .output o q2
.endfub
.end
";
        let nl = parse_netlist(text).unwrap();
        let obs = observation_points(&nl);
        let q1 = nl.lookup("f.q1").unwrap();
        let out = run_injection(&nl, q1, &InjectConfig::default(), &obs);
        assert_eq!(out, Outcome::Error);
    }

    #[test]
    fn flip_on_dangling_flop_is_masked_or_unknown() {
        // q2 drives nothing: the flip can never reach the output, but the
        // corrupted bit is overwritten next cycle, so it is fully masked.
        let text = r"
.design t
.fub f
  .input i
  .flop q1 i
  .flop q2 q1
  .output o q1
.endfub
.end
";
        let nl = parse_netlist(text).unwrap();
        let obs = observation_points(&nl);
        let q2 = nl.lookup("f.q2").unwrap();
        let out = run_injection(&nl, q2, &InjectConfig::default(), &obs);
        assert_eq!(out, Outcome::Masked);
    }

    #[test]
    fn flip_in_gated_and_path_can_be_logically_masked() {
        // q1 AND zero: the AND gate masks q1 completely.
        let text = r"
.design t
.fub f
  .input i
  .gate const0 zero
  .flop q1 i
  .gate and g q1 zero
  .flop q2 g
  .output o q2
.endfub
.end
";
        let nl = parse_netlist(text).unwrap();
        let obs = observation_points(&nl);
        let q1 = nl.lookup("f.q1").unwrap();
        let out = run_injection(&nl, q1, &InjectConfig::default(), &obs);
        assert_eq!(out, Outcome::Masked, "AND-0 must logically mask");
    }

    #[test]
    fn fault_stuck_in_disabled_register_is_unknown() {
        // A flop that never loads (enable const-0) and drives nothing
        // observable retains the corrupted bit forever.
        let text = r"
.design t
.fub f
  .input i
  .gate const0 never
  .flop stuck i never
  .flop q1 i
  .output o q1
.endfub
.end
";
        let nl = parse_netlist(text).unwrap();
        let obs = observation_points(&nl);
        let stuck = nl.lookup("f.stuck").unwrap();
        let out = run_injection(&nl, stuck, &InjectConfig::default(), &obs);
        assert_eq!(out, Outcome::Unknown);
    }

    #[test]
    fn structure_cells_are_observation_points() {
        let text = r"
.design t
.fub f
  .input i
  .struct st 1
  .flop q1 i
  .sw st[0] q1
.endfub
.end
";
        let nl = parse_netlist(text).unwrap();
        let obs = observation_points(&nl);
        assert_eq!(obs.len(), 1);
        let q1 = nl.lookup("f.q1").unwrap();
        let out = run_injection(&nl, q1, &InjectConfig::default(), &obs);
        assert_eq!(out, Outcome::Error, "corrupt data written to a structure");
    }

    #[test]
    fn detection_precedes_silent_corruption() {
        // q1 feeds a protected structure (detector) and the output: the
        // detector fires before the corrupt data becomes program-visible.
        let text = r"
.design t
.fub f
  .input i
  .struct prot 1
  .flop q1 i
  .sw prot[0] q1
  .flop q2 q1
  .output o q2
.endfub
.end
";
        let nl = parse_netlist(text).unwrap();
        let q1 = nl.lookup("f.q1").unwrap();
        let detector = nl.lookup("f.prot[0]").unwrap();
        let out_node = nl.lookup("f.o").unwrap();
        let r =
            run_injection_protected(&nl, q1, &InjectConfig::default(), &[out_node], &[detector]);
        assert_eq!(r, DetailedOutcome::Due);
    }

    #[test]
    fn unprotected_path_is_sdc() {
        let text = r"
.design t
.fub f
  .input i
  .flop q1 i
  .flop q2 q1
  .output o q2
.endfub
.end
";
        let nl = parse_netlist(text).unwrap();
        let q1 = nl.lookup("f.q1").unwrap();
        let out_node = nl.lookup("f.o").unwrap();
        let r = run_injection_protected(&nl, q1, &InjectConfig::default(), &[out_node], &[]);
        assert_eq!(r, DetailedOutcome::Sdc);
    }

    #[test]
    fn protected_outcomes_cover_masked_and_unknown() {
        let text = r"
.design t
.fub f
  .input i
  .gate const0 never
  .flop stuck i never
  .flop dead i
  .flop q1 i
  .output o q1
.endfub
.end
";
        let nl = parse_netlist(text).unwrap();
        let out_node = nl.lookup("f.o").unwrap();
        let stuck = nl.lookup("f.stuck").unwrap();
        let dead = nl.lookup("f.dead").unwrap();
        let cfg = InjectConfig::default();
        assert_eq!(
            run_injection_protected(&nl, stuck, &cfg, &[out_node], &[]),
            DetailedOutcome::Unknown
        );
        assert_eq!(
            run_injection_protected(&nl, dead, &cfg, &[out_node], &[]),
            DetailedOutcome::Masked
        );
    }

    #[test]
    fn burst_upsets_propagate_when_any_bit_is_live() {
        let text = r"
.design t
.fub f
  .input i
  .flop q1 i
  .flop q2 q1
  .flop dangling q1
  .output o q2
.endfub
.end
";
        let nl = parse_netlist(text).unwrap();
        let obs = observation_points(&nl);
        let q1 = nl.lookup("f.q1").unwrap();
        let dang = nl.lookup("f.dangling").unwrap();
        let cfg = InjectConfig::default();
        // A burst containing only the dangling bit is masked; adding a
        // live bit makes the burst an error.
        assert_eq!(
            run_injection_burst(&nl, &[dang], &cfg, &obs),
            Outcome::Masked
        );
        assert_eq!(
            run_injection_burst(&nl, &[dang, q1], &cfg, &obs),
            Outcome::Error
        );
        // Single-element burst is exactly run_injection.
        assert_eq!(
            run_injection_burst(&nl, &[q1], &cfg, &obs),
            run_injection(&nl, q1, &cfg, &obs)
        );
    }

    #[test]
    fn even_burst_on_xor_reconvergence_can_cancel() {
        // Two flipped bits feeding the same XOR cancel: the burst is
        // masked even though each bit alone would error.
        let text = r"
.design t
.fub f
  .input i
  .flop q1 i
  .flop q2 q1
  .gate xor g q1 q2
  .output o g
.endfub
.end
";
        let nl = parse_netlist(text).unwrap();
        let obs = observation_points(&nl);
        let q1 = nl.lookup("f.q1").unwrap();
        let q2 = nl.lookup("f.q2").unwrap();
        let cfg = InjectConfig {
            horizon: 0,
            ..InjectConfig::default()
        };
        // Within the injection cycle the XOR sees both flips and cancels.
        // (Horizon 0 checks only the injection cycle; afterwards q1
        // reloads from the input and the fault pair decays.)
        assert_eq!(
            run_injection_burst(&nl, &[q1, q2], &cfg, &obs),
            Outcome::Unknown
        );
        assert_eq!(run_injection_burst(&nl, &[q1], &cfg, &obs), Outcome::Error);
    }

    #[test]
    fn deterministic_outcomes() {
        let text = r"
.design t
.fub f
  .input i
  .flop q1 i
  .gate xor g q1 i
  .flop q2 g
  .output o q2
.endfub
.end
";
        let nl = parse_netlist(text).unwrap();
        let obs = observation_points(&nl);
        let q1 = nl.lookup("f.q1").unwrap();
        let cfg = InjectConfig::default();
        assert_eq!(
            run_injection(&nl, q1, &cfg, &obs),
            run_injection(&nl, q1, &cfg, &obs)
        );
    }
}
