//! The [`Collector`] handle: spans, counters, and event storage.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A typed span-field value.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// An unsigned integer (counts, sizes).
    U64(u64),
    /// A float (deltas, fractions).
    F64(f64),
    /// A short label.
    Str(String),
    /// A flag (mode toggles, pass/fail outcomes).
    Bool(bool),
}

/// One recorded span: a named wall-time interval with typed fields.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanEvent {
    /// Span name, dot-separated by convention (`"netlist.parse"`).
    pub name: &'static str,
    /// Start offset from the collector's epoch, microseconds.
    pub start_us: u64,
    /// Duration, microseconds.
    pub dur_us: u64,
    /// Typed fields attached before the span closed.
    pub fields: Vec<(&'static str, FieldValue)>,
}

#[derive(Debug, Default)]
struct State {
    spans: Vec<SpanEvent>,
    counters: BTreeMap<&'static str, u64>,
}

#[derive(Debug)]
struct Inner {
    epoch: Instant,
    state: Mutex<State>,
}

/// A cloneable observability handle.
///
/// All clones share the same event store. A disabled collector (from
/// [`Collector::disabled`] or [`Default`]) makes every operation a no-op
/// without clock reads, allocation, or locking.
#[derive(Debug, Clone, Default)]
pub struct Collector {
    inner: Option<Arc<Inner>>,
}

impl Collector {
    /// Creates an enabled collector; its epoch is the creation instant.
    pub fn new() -> Self {
        Collector {
            inner: Some(Arc::new(Inner {
                epoch: Instant::now(),
                state: Mutex::new(State::default()),
            })),
        }
    }

    /// Creates a disabled collector: every operation is a no-op.
    pub fn disabled() -> Self {
        Collector { inner: None }
    }

    /// Whether this collector records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Opens a span. The returned guard records the interval when dropped
    /// (or when [`Span::finish`] is called). On a disabled collector this
    /// reads no clock and allocates nothing.
    pub fn span(&self, name: &'static str) -> Span {
        Span {
            inner: self.inner.as_ref().map(|inner| SpanBody {
                inner: Arc::clone(inner),
                start: Instant::now(),
                fields: Vec::new(),
            }),
            name,
        }
    }

    /// Records an already-measured interval — the fold-in path for code
    /// that measures wall time itself (e.g. the relaxation loop's
    /// per-sweep telemetry, which shares one `Instant` read between the
    /// span and its `IterationStats`).
    pub fn record_span(
        &self,
        name: &'static str,
        start: Instant,
        dur: Duration,
        fields: Vec<(&'static str, FieldValue)>,
    ) {
        if let Some(inner) = &self.inner {
            let start_us = start
                .saturating_duration_since(inner.epoch)
                .as_micros()
                .min(u128::from(u64::MAX)) as u64;
            let ev = SpanEvent {
                name,
                start_us,
                dur_us: dur.as_micros().min(u128::from(u64::MAX)) as u64,
                fields,
            };
            inner
                .state
                .lock()
                .expect("collector poisoned")
                .spans
                .push(ev);
        }
    }

    /// Adds `delta` to the named monotonic counter.
    pub fn count(&self, name: &'static str, delta: u64) {
        if let Some(inner) = &self.inner {
            let mut st = inner.state.lock().expect("collector poisoned");
            *st.counters.entry(name).or_insert(0) += delta;
        }
    }

    /// Snapshot of every recorded span, in recording order.
    pub fn spans(&self) -> Vec<SpanEvent> {
        match &self.inner {
            None => Vec::new(),
            Some(inner) => inner
                .state
                .lock()
                .expect("collector poisoned")
                .spans
                .clone(),
        }
    }

    /// Snapshot of every counter and its current value.
    pub fn counters(&self) -> Vec<(&'static str, u64)> {
        match &self.inner {
            None => Vec::new(),
            Some(inner) => inner
                .state
                .lock()
                .expect("collector poisoned")
                .counters
                .iter()
                .map(|(&k, &v)| (k, v))
                .collect(),
        }
    }

    /// Aggregates spans and counters into the per-phase summary used by
    /// `--metrics`.
    pub fn report(&self) -> crate::report::MetricsReport {
        crate::report::MetricsReport::from_events(&self.spans(), &self.counters())
    }

    /// Serializes the collected trace as `seqavf-trace/1` NDJSON (see
    /// [`crate::ndjson`]). `meta` key/value pairs are added to the header
    /// line (e.g. the CLI subcommand).
    pub fn write_ndjson(
        &self,
        w: &mut dyn std::io::Write,
        meta: &[(&str, &str)],
    ) -> std::io::Result<()> {
        crate::ndjson::write_trace(w, &self.spans(), &self.counters(), meta)
    }
}

#[derive(Debug)]
struct SpanBody {
    inner: Arc<Inner>,
    start: Instant,
    fields: Vec<(&'static str, FieldValue)>,
}

/// An open span; records its interval when dropped.
#[derive(Debug)]
pub struct Span {
    inner: Option<SpanBody>,
    name: &'static str,
}

impl Span {
    /// Attaches an integer field.
    pub fn field_u64(&mut self, key: &'static str, value: u64) {
        if let Some(body) = &mut self.inner {
            body.fields.push((key, FieldValue::U64(value)));
        }
    }

    /// Attaches a float field.
    pub fn field_f64(&mut self, key: &'static str, value: f64) {
        if let Some(body) = &mut self.inner {
            body.fields.push((key, FieldValue::F64(value)));
        }
    }

    /// Attaches a string field.
    pub fn field_str(&mut self, key: &'static str, value: &str) {
        if let Some(body) = &mut self.inner {
            body.fields.push((key, FieldValue::Str(value.to_owned())));
        }
    }

    /// Attaches a boolean field.
    pub fn field_bool(&mut self, key: &'static str, value: bool) {
        if let Some(body) = &mut self.inner {
            body.fields.push((key, FieldValue::Bool(value)));
        }
    }

    /// Closes the span now (equivalent to dropping it).
    pub fn finish(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(body) = self.inner.take() {
            let dur = body.start.elapsed();
            let start_us = body
                .start
                .saturating_duration_since(body.inner.epoch)
                .as_micros()
                .min(u128::from(u64::MAX)) as u64;
            let ev = SpanEvent {
                name: self.name,
                start_us,
                dur_us: dur.as_micros().min(u128::from(u64::MAX)) as u64,
                fields: body.fields,
            };
            body.inner
                .state
                .lock()
                .expect("collector poisoned")
                .spans
                .push(ev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_collector_records_nothing() {
        let c = Collector::disabled();
        assert!(!c.is_enabled());
        let mut s = c.span("x");
        s.field_u64("n", 3);
        s.finish();
        c.count("k", 5);
        assert!(c.spans().is_empty());
        assert!(c.counters().is_empty());
    }

    #[test]
    fn spans_record_name_fields_and_order() {
        let c = Collector::new();
        {
            let mut s = c.span("a.first");
            s.field_u64("nodes", 10);
            s.field_f64("delta", 0.5);
            s.field_str("mode", "global");
        }
        c.span("b.second").finish();
        let spans = c.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "a.first");
        assert_eq!(spans[1].name, "b.second");
        assert_eq!(spans[0].fields.len(), 3);
        assert_eq!(spans[0].fields[0], ("nodes", FieldValue::U64(10)));
        // Later spans start no earlier than earlier ones.
        assert!(spans[1].start_us >= spans[0].start_us);
    }

    #[test]
    fn counters_accumulate_monotonically() {
        let c = Collector::new();
        c.count("relax.changed_sets", 7);
        c.count("relax.changed_sets", 3);
        c.count("sfi.errors", 1);
        let counters = c.counters();
        assert_eq!(
            counters,
            vec![("relax.changed_sets", 10), ("sfi.errors", 1)]
        );
    }

    #[test]
    fn record_span_uses_caller_measurement() {
        let c = Collector::new();
        let t0 = Instant::now();
        c.record_span(
            "relax.sweep",
            t0,
            Duration::from_micros(1234),
            vec![("changed_sets", FieldValue::U64(9))],
        );
        let spans = c.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].dur_us, 1234);
        assert_eq!(spans[0].fields[0], ("changed_sets", FieldValue::U64(9)));
    }

    #[test]
    fn clones_share_the_store_across_threads() {
        let c = Collector::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let h = c.clone();
                s.spawn(move || {
                    h.span("worker.step").finish();
                    h.count("steps", 1);
                });
            }
        });
        assert_eq!(c.spans().len(), 4);
        assert_eq!(c.counters(), vec![("steps", 4)]);
    }
}
