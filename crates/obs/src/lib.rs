//! # seqavf-obs
//!
//! Zero-dependency structured observability for the seqavf pipeline.
//!
//! The paper's headline claim is *speed* — analytical pAVF propagation
//! instead of fault injection — so every pipeline phase must be able to
//! account for its wall time in a machine-readable way. This crate
//! provides the substrate: a [`Collector`] handle that records **spans**
//! (named wall-time intervals with typed fields), **monotonic counters**,
//! and derives **log2 wall-time histograms** per span name, all without
//! globals, macros, or external dependencies.
//!
//! ## Design constraints
//!
//! - **Handle, not global.** A [`Collector`] is an explicit, cloneable
//!   handle threaded through the pipeline. Library entry points take
//!   `&Collector`; callers that don't care pass [`Collector::disabled`]
//!   (the untraced wrappers do this for them).
//! - **Cheap enough to leave on.** A disabled collector is a `None` — a
//!   span on a disabled collector performs no clock read, no allocation,
//!   and no locking. An enabled span costs one clock read at open and one
//!   at close, plus one short mutex acquisition at close. Instrumentation
//!   is placed at *phase* granularity (a parse, an SCC pass, a relaxation
//!   sweep, a campaign), never per node or per gate-evaluation.
//! - **No perturbation.** The collector only observes; computation never
//!   reads it, so results — including the bit-identity contract of the
//!   sharded relaxation engine — are independent of whether collection is
//!   enabled.
//!
//! ## Output
//!
//! [`Collector::write_ndjson`] serializes everything as newline-delimited
//! JSON under the `seqavf-trace/1` schema (see [`ndjson`] for the exact
//! grammar and [`ndjson::validate_trace`] for the validator used by the
//! `trace-validate` binary and CI). [`Collector::report`] aggregates the
//! same data into a human-readable per-phase table for `--metrics`.

pub mod collector;
pub mod ndjson;
pub mod report;

pub use collector::{Collector, FieldValue, Span, SpanEvent};
pub use ndjson::{validate_line, validate_trace, TraceStats, SCHEMA};
pub use report::MetricsReport;
