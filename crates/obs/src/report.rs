//! Human-readable aggregation of collected telemetry (the `--metrics`
//! table).

use std::collections::BTreeMap;

use crate::collector::SpanEvent;

/// Aggregated wall-time statistics for one span name.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanSummary {
    /// Span name.
    pub name: &'static str,
    /// Number of recorded spans.
    pub count: usize,
    /// Total wall time, microseconds.
    pub total_us: u64,
    /// Shortest span, microseconds.
    pub min_us: u64,
    /// Longest span, microseconds.
    pub max_us: u64,
}

impl SpanSummary {
    /// Mean span duration, microseconds.
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_us as f64 / self.count as f64
        }
    }
}

/// The per-phase summary a collector aggregates to.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsReport {
    /// One row per span name, sorted by name.
    pub spans: Vec<SpanSummary>,
    /// Final counter values, sorted by name.
    pub counters: Vec<(&'static str, u64)>,
}

fn fmt_us(us: f64) -> String {
    if us >= 1e6 {
        format!("{:.3} s", us / 1e6)
    } else if us >= 1e3 {
        format!("{:.3} ms", us / 1e3)
    } else {
        format!("{us:.0} µs")
    }
}

impl MetricsReport {
    /// Aggregates raw events into the report.
    pub fn from_events(spans: &[SpanEvent], counters: &[(&'static str, u64)]) -> Self {
        let mut agg: BTreeMap<&'static str, SpanSummary> = BTreeMap::new();
        for ev in spans {
            let e = agg.entry(ev.name).or_insert(SpanSummary {
                name: ev.name,
                count: 0,
                total_us: 0,
                min_us: u64::MAX,
                max_us: 0,
            });
            e.count += 1;
            e.total_us += ev.dur_us;
            e.min_us = e.min_us.min(ev.dur_us);
            e.max_us = e.max_us.max(ev.dur_us);
        }
        MetricsReport {
            spans: agg.into_values().collect(),
            counters: counters.to_vec(),
        }
    }

    /// The summary row for a span name, if any spans were recorded.
    pub fn span(&self, name: &str) -> Option<&SpanSummary> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// The final value of a counter, if it was ever incremented.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| *k == name)
            .map(|&(_, v)| v)
    }

    /// Renders the per-phase table.
    pub fn to_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        if self.spans.is_empty() && self.counters.is_empty() {
            out.push_str("no telemetry collected\n");
            return out;
        }
        if !self.spans.is_empty() {
            let _ = writeln!(
                out,
                "{:<28} {:>7} {:>12} {:>12} {:>12} {:>12}",
                "phase", "count", "total", "mean", "min", "max"
            );
            for s in &self.spans {
                let _ = writeln!(
                    out,
                    "{:<28} {:>7} {:>12} {:>12} {:>12} {:>12}",
                    s.name,
                    s.count,
                    fmt_us(s.total_us as f64),
                    fmt_us(s.mean_us()),
                    fmt_us(s.min_us as f64),
                    fmt_us(s.max_us as f64)
                );
            }
        }
        if !self.counters.is_empty() {
            let _ = writeln!(out, "{:<28} {:>12}", "counter", "value");
            for (name, value) in &self.counters {
                let _ = writeln!(out, "{name:<28} {value:>12}");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::Collector;

    #[test]
    fn aggregates_by_name() {
        let spans = vec![
            SpanEvent {
                name: "relax.sweep",
                start_us: 0,
                dur_us: 100,
                fields: Vec::new(),
            },
            SpanEvent {
                name: "relax.sweep",
                start_us: 100,
                dur_us: 300,
                fields: Vec::new(),
            },
            SpanEvent {
                name: "netlist.parse",
                start_us: 0,
                dur_us: 50,
                fields: Vec::new(),
            },
        ];
        let r = MetricsReport::from_events(&spans, &[("relax.changed_sets", 9)]);
        assert_eq!(r.spans.len(), 2);
        let sweep = r.span("relax.sweep").unwrap();
        assert_eq!(sweep.count, 2);
        assert_eq!(sweep.total_us, 400);
        assert_eq!(sweep.min_us, 100);
        assert_eq!(sweep.max_us, 300);
        assert!((sweep.mean_us() - 200.0).abs() < 1e-12);
        assert_eq!(r.counter("relax.changed_sets"), Some(9));
        assert_eq!(r.counter("missing"), None);
    }

    #[test]
    fn table_mentions_every_phase_and_counter() {
        let c = Collector::new();
        c.span("a.phase").finish();
        c.count("b.counter", 3);
        let table = c.report().to_table();
        assert!(table.contains("a.phase"), "{table}");
        assert!(table.contains("b.counter"), "{table}");
    }

    #[test]
    fn empty_report_renders() {
        let r = MetricsReport::default();
        assert!(r.to_table().contains("no telemetry"));
    }
}
