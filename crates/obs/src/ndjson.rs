//! NDJSON trace serialization and schema validation.
//!
//! # The `seqavf-trace/1` schema
//!
//! A trace is newline-delimited JSON: one object per line, each with a
//! `"type"` discriminator. Four line types exist:
//!
//! ```text
//! {"type":"meta","schema":"seqavf-trace/1",<key>:<string>...}
//! {"type":"span","name":<string>,"start_us":<u64>,"dur_us":<u64>,"fields":{<key>:<num|string|bool>...}}
//! {"type":"counter","name":<string>,"value":<u64>}
//! {"type":"hist","name":<string>,"unit":"us","count":<u64>,"buckets":[[<lo_us>,<count>],...]}
//! ```
//!
//! Rules:
//!
//! - The **first line must be `meta`** and must carry
//!   `"schema":"seqavf-trace/1"`. Extra meta keys (e.g. `"cmd"`) are
//!   free-form strings.
//! - `span` lines appear in recording order; `start_us` is the offset from
//!   the collector's epoch and `dur_us` the wall time, both in
//!   microseconds. `fields` is omitted when empty; its values are
//!   numbers, strings or booleans.
//! - `counter` lines report the **final** value of each monotonic counter.
//! - `hist` lines report the per-span-name wall-time histogram with
//!   power-of-two bucket lower bounds: a span of duration `d` µs falls in
//!   the bucket with the largest `lo ≤ d` (`lo ∈ {0, 1, 2, 4, 8, …}`).
//!   Bucket counts must sum to `count`.
//! - Empty lines are not allowed; unknown `"type"` values are rejected.
//!
//! [`validate_trace`] enforces all of the above with a self-contained JSON
//! parser (this crate takes no dependencies); the `trace-validate` binary
//! and the CI smoke job call it on real CLI output.

use std::collections::BTreeMap;
use std::io::Write;

use crate::collector::{FieldValue, SpanEvent};

/// The schema identifier stamped into (and required of) every trace.
pub const SCHEMA: &str = "seqavf-trace/1";

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

fn escape_into(out: &mut String, s: &str) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // `{:?}` round-trips f64 through shortest decimal.
        out.push_str(&format!("{v:?}"));
    } else {
        // JSON has no Inf/NaN; clamp to null (validator rejects it, which
        // is the right failure mode for telemetry that went wrong).
        out.push_str("null");
    }
}

fn field_value_into(out: &mut String, v: &FieldValue) {
    match v {
        FieldValue::U64(n) => out.push_str(&n.to_string()),
        FieldValue::F64(x) => push_f64(out, *x),
        FieldValue::Str(s) => {
            out.push('"');
            escape_into(out, s);
            out.push('"');
        }
        FieldValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
    }
}

fn span_line(ev: &SpanEvent) -> String {
    let mut out = String::with_capacity(96);
    out.push_str("{\"type\":\"span\",\"name\":\"");
    escape_into(&mut out, ev.name);
    out.push_str(&format!(
        "\",\"start_us\":{},\"dur_us\":{}",
        ev.start_us, ev.dur_us
    ));
    if !ev.fields.is_empty() {
        out.push_str(",\"fields\":{");
        for (i, (k, v)) in ev.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            escape_into(&mut out, k);
            out.push_str("\":");
            field_value_into(&mut out, v);
        }
        out.push('}');
    }
    out.push('}');
    out
}

/// The power-of-two histogram bucket lower bound for a duration.
fn bucket_lo(dur_us: u64) -> u64 {
    if dur_us == 0 {
        0
    } else {
        1u64 << (63 - dur_us.leading_zeros())
    }
}

/// Serializes a full trace (meta header, spans, counters, histograms).
pub fn write_trace(
    w: &mut dyn Write,
    spans: &[SpanEvent],
    counters: &[(&'static str, u64)],
    meta: &[(&str, &str)],
) -> std::io::Result<()> {
    let mut head = String::from("{\"type\":\"meta\",\"schema\":\"");
    escape_into(&mut head, SCHEMA);
    head.push('"');
    for (k, v) in meta {
        head.push_str(",\"");
        escape_into(&mut head, k);
        head.push_str("\":\"");
        escape_into(&mut head, v);
        head.push('"');
    }
    head.push('}');
    writeln!(w, "{head}")?;

    let mut hists: BTreeMap<&'static str, BTreeMap<u64, u64>> = BTreeMap::new();
    for ev in spans {
        writeln!(w, "{}", span_line(ev))?;
        *hists
            .entry(ev.name)
            .or_default()
            .entry(bucket_lo(ev.dur_us))
            .or_insert(0) += 1;
    }
    for (name, value) in counters {
        let mut line = String::from("{\"type\":\"counter\",\"name\":\"");
        escape_into(&mut line, name);
        line.push_str(&format!("\",\"value\":{value}}}"));
        writeln!(w, "{line}")?;
    }
    for (name, buckets) in &hists {
        let count: u64 = buckets.values().sum();
        let mut line = String::from("{\"type\":\"hist\",\"name\":\"");
        escape_into(&mut line, name);
        line.push_str(&format!(
            "\",\"unit\":\"us\",\"count\":{count},\"buckets\":["
        ));
        for (i, (lo, n)) in buckets.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            line.push_str(&format!("[{lo},{n}]"));
        }
        line.push_str("]}");
        writeln!(w, "{line}")?;
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Minimal JSON parsing (validation side)
// ---------------------------------------------------------------------------

/// A parsed JSON value (validation-side representation).
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get<'a>(&'a self, key: &str) -> Option<&'a Json> {
        match self {
            Json::Obj(kv) => kv.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= 2f64.powi(53) => Some(*v as u64),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn err<T>(&self, msg: &str) -> Result<T, String> {
        Err(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(&format!("expected `{}`", b as char))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => self.err("expected a JSON value"),
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            self.err(&format!("expected `{lit}`"))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|b| {
            b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-'
        }) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number `{text}` at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| "truncated \\u escape".to_owned())?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return self.err("bad escape"),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8".to_owned())?;
                    let ch = rest.chars().next().expect("non-empty");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut kv = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(kv));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            kv.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(kv));
                }
                _ => return self.err("expected `,` or `}`"),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return self.err("expected `,` or `]`"),
            }
        }
    }

    fn parse_complete(mut self) -> Result<Json, String> {
        let v = self.value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return self.err("trailing characters");
        }
        Ok(v)
    }
}

// ---------------------------------------------------------------------------
// Validation
// ---------------------------------------------------------------------------

/// Counts of each validated line type in a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceStats {
    /// `span` lines.
    pub spans: usize,
    /// `counter` lines.
    pub counters: usize,
    /// `hist` lines.
    pub hists: usize,
}

fn require_name(obj: &Json) -> Result<String, String> {
    match obj.get("name").and_then(Json::as_str) {
        Some(n) if !n.is_empty() => Ok(n.to_owned()),
        Some(_) => Err("empty `name`".to_owned()),
        None => Err("missing string `name`".to_owned()),
    }
}

/// What [`classify_line`] learned about one validated line.
struct LineInfo {
    ty: &'static str,
    /// `name` of a span/counter/hist line.
    name: Option<String>,
    /// `count` of a hist line.
    hist_count: Option<u64>,
}

/// Validates a single NDJSON line (any line type) against the schema and
/// returns its `"type"`.
pub fn validate_line(line: &str) -> Result<&'static str, String> {
    classify_line(line).map(|info| info.ty)
}

fn classify_line(line: &str) -> Result<LineInfo, String> {
    let obj = Parser::new(line).parse_complete()?;
    if !matches!(obj, Json::Obj(_)) {
        return Err("line is not a JSON object".to_owned());
    }
    let ty = obj
        .get("type")
        .and_then(Json::as_str)
        .ok_or("missing string `type`")?;
    match ty {
        "meta" => {
            match obj.get("schema").and_then(Json::as_str) {
                Some(s) if s == SCHEMA => {}
                Some(s) => return Err(format!("unknown schema `{s}` (expected `{SCHEMA}`)")),
                None => return Err("meta line missing `schema`".to_owned()),
            }
            Ok(LineInfo {
                ty: "meta",
                name: None,
                hist_count: None,
            })
        }
        "span" => {
            let name = require_name(&obj)?;
            obj.get("start_us")
                .and_then(Json::as_u64)
                .ok_or("span missing u64 `start_us`")?;
            obj.get("dur_us")
                .and_then(Json::as_u64)
                .ok_or("span missing u64 `dur_us`")?;
            if let Some(fields) = obj.get("fields") {
                let Json::Obj(kv) = fields else {
                    return Err("span `fields` is not an object".to_owned());
                };
                for (k, v) in kv {
                    if !matches!(v, Json::Num(_) | Json::Str(_) | Json::Bool(_)) {
                        return Err(format!(
                            "span field `{k}` is neither number, string nor bool"
                        ));
                    }
                }
            }
            Ok(LineInfo {
                ty: "span",
                name: Some(name),
                hist_count: None,
            })
        }
        "counter" => {
            let name = require_name(&obj)?;
            obj.get("value")
                .and_then(Json::as_u64)
                .ok_or("counter missing u64 `value`")?;
            Ok(LineInfo {
                ty: "counter",
                name: Some(name),
                hist_count: None,
            })
        }
        "hist" => {
            let name = require_name(&obj)?;
            match obj.get("unit").and_then(Json::as_str) {
                Some("us") => {}
                _ => return Err("hist `unit` must be \"us\"".to_owned()),
            }
            let count = obj
                .get("count")
                .and_then(Json::as_u64)
                .ok_or("hist missing u64 `count`")?;
            let Some(Json::Arr(buckets)) = obj.get("buckets") else {
                return Err("hist missing array `buckets`".to_owned());
            };
            let mut total = 0u64;
            let mut prev_lo: Option<u64> = None;
            for b in buckets {
                let Json::Arr(pair) = b else {
                    return Err("hist bucket is not a [lo,count] pair".to_owned());
                };
                if pair.len() != 2 {
                    return Err("hist bucket is not a [lo,count] pair".to_owned());
                }
                let lo = pair[0].as_u64().ok_or("hist bucket lo is not a u64")?;
                let n = pair[1].as_u64().ok_or("hist bucket count is not a u64")?;
                if lo != 0 && !lo.is_power_of_two() {
                    return Err(format!("hist bucket lo {lo} is not 0 or a power of two"));
                }
                if let Some(p) = prev_lo {
                    if lo <= p {
                        return Err("hist buckets are not strictly ascending".to_owned());
                    }
                }
                prev_lo = Some(lo);
                total += n;
            }
            if total != count {
                return Err(format!(
                    "hist bucket counts sum to {total}, `count` says {count}"
                ));
            }
            Ok(LineInfo {
                ty: "hist",
                name: Some(name),
                hist_count: Some(count),
            })
        }
        other => Err(format!("unknown line type `{other}`")),
    }
}

/// Validates a complete trace. Beyond per-line schema checks, this
/// enforces the structural invariants the writer guarantees, so damaged
/// traces (truncation, reordered or spliced lines) are rejected:
///
/// - the first line must be a `meta` line with the current schema, and no
///   other `meta` line may appear;
/// - sections appear in writer order — all `span` lines, then all
///   `counter` lines, then all `hist` lines;
/// - `counter` and `hist` names are strictly ascending within their
///   sections (the writer emits them from sorted maps; any other order
///   means the counter section was tampered with or spliced);
/// - each `hist` line's `count` must equal the number of `span` lines of
///   that name, every histogrammed name must have spans, and — whenever a
///   summary section (counters or hists) is present — every span name
///   must have its histogram. A trace whose tail was cut off loses hist
///   lines first and span lines next, so both mismatch directions are
///   truncation detectors.
pub fn validate_trace(text: &str) -> Result<TraceStats, String> {
    let mut stats = TraceStats::default();
    let mut saw_meta = false;
    // 0 = spans, 1 = counters, 2 = hists (sections in writer order).
    let mut section = 0u8;
    let mut prev_counter: Option<String> = None;
    let mut prev_hist: Option<String> = None;
    let mut span_counts: BTreeMap<String, u64> = BTreeMap::new();
    let mut hist_names: Vec<String> = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let info = classify_line(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        match info.ty {
            "meta" if i == 0 => saw_meta = true,
            "meta" => return Err(format!("line {}: meta line after the header", i + 1)),
            _ if i == 0 => return Err("line 1: first line must be `meta`".to_owned()),
            "span" => {
                if section > 0 {
                    return Err(format!(
                        "line {}: span line after the counter/hist sections",
                        i + 1
                    ));
                }
                *span_counts
                    .entry(info.name.expect("span has a name"))
                    .or_insert(0) += 1;
                stats.spans += 1;
            }
            "counter" => {
                if section > 1 {
                    return Err(format!(
                        "line {}: counter line after the hist section",
                        i + 1
                    ));
                }
                section = 1;
                let name = info.name.expect("counter has a name");
                if prev_counter.as_deref().is_some_and(|p| p >= name.as_str()) {
                    return Err(format!(
                        "line {}: counter `{name}` breaks ascending name order (non-monotonic counter section)",
                        i + 1
                    ));
                }
                prev_counter = Some(name);
                stats.counters += 1;
            }
            "hist" => {
                section = 2;
                let name = info.name.expect("hist has a name");
                if prev_hist.as_deref().is_some_and(|p| p >= name.as_str()) {
                    return Err(format!(
                        "line {}: hist `{name}` breaks ascending name order",
                        i + 1
                    ));
                }
                let count = info.hist_count.expect("hist has a count");
                match span_counts.get(&name) {
                    None => {
                        return Err(format!(
                            "line {}: hist `{name}` has no matching span lines",
                            i + 1
                        ))
                    }
                    Some(&n) if n != count => {
                        return Err(format!(
                            "line {}: hist `{name}` counts {count} spans but {n} span lines are present (truncated trace?)",
                            i + 1
                        ))
                    }
                    Some(_) => {}
                }
                prev_hist = Some(name.clone());
                hist_names.push(name);
                stats.hists += 1;
            }
            _ => unreachable!("classify_line returns known types"),
        }
    }
    if !saw_meta {
        return Err("empty trace (no meta header)".to_owned());
    }
    // The writer always follows spans with their histograms; a span name
    // without one means the trace's tail was cut off.
    for name in span_counts.keys() {
        if !hist_names.iter().any(|h| h == name) {
            return Err(format!("span `{name}` has no hist line (truncated trace?)"));
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::Collector;

    #[test]
    fn written_trace_validates() {
        let c = Collector::new();
        {
            let mut s = c.span("netlist.parse");
            s.field_u64("models", 3);
            s.field_str("frontend", "exlif");
        }
        c.span("relax.sweep").finish();
        c.span("relax.sweep").finish();
        c.count("relax.changed_sets", 12);
        let mut buf = Vec::new();
        c.write_ndjson(&mut buf, &[("cmd", "sart")]).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let stats = validate_trace(&text).unwrap();
        assert_eq!(stats.spans, 3);
        assert_eq!(stats.counters, 1);
        assert_eq!(stats.hists, 2, "one hist per distinct span name");
    }

    #[test]
    fn bool_fields_round_trip() {
        let c = Collector::new();
        {
            let mut s = c.span("validate.campaign");
            s.field_bool("importance", true);
            s.field_bool("exact_kernel", false);
            s.field_u64("trials", 50_000);
        }
        let mut buf = Vec::new();
        c.write_ndjson(&mut buf, &[("cmd", "validate")]).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(
            text.contains("\"importance\":true") && text.contains("\"exact_kernel\":false"),
            "{text}"
        );
        validate_trace(&text).unwrap();
    }

    #[test]
    fn rejects_non_scalar_span_field() {
        let bad =
            "{\"type\":\"span\",\"name\":\"x\",\"start_us\":0,\"dur_us\":1,\"fields\":{\"k\":[1]}}";
        assert!(validate_line(bad)
            .unwrap_err()
            .contains("neither number, string nor bool"));
    }

    #[test]
    fn rejects_missing_header() {
        let bad = "{\"type\":\"span\",\"name\":\"x\",\"start_us\":0,\"dur_us\":1}";
        assert!(validate_trace(bad).unwrap_err().contains("meta"));
    }

    #[test]
    fn rejects_wrong_schema() {
        let bad = "{\"type\":\"meta\",\"schema\":\"other/9\"}";
        assert!(validate_line(bad).unwrap_err().contains("unknown schema"));
    }

    #[test]
    fn rejects_malformed_span() {
        assert!(validate_line("{\"type\":\"span\",\"name\":\"x\"}").is_err());
        assert!(validate_line("{\"type\":\"span\",\"start_us\":0,\"dur_us\":1}").is_err());
        assert!(
            validate_line("{\"type\":\"span\",\"name\":\"\",\"start_us\":0,\"dur_us\":1}").is_err()
        );
        assert!(
            validate_line("{\"type\":\"span\",\"name\":\"x\",\"start_us\":-4,\"dur_us\":1}")
                .is_err()
        );
    }

    #[test]
    fn rejects_unknown_type_and_garbage() {
        assert!(validate_line("{\"type\":\"frob\",\"name\":\"x\"}").is_err());
        assert!(validate_line("not json").is_err());
        assert!(validate_line("{\"type\":\"span\"} extra").is_err());
    }

    #[test]
    fn rejects_inconsistent_hist() {
        let bad = "{\"type\":\"hist\",\"name\":\"x\",\"unit\":\"us\",\"count\":3,\"buckets\":[[0,1],[2,1]]}";
        assert!(validate_line(bad).unwrap_err().contains("sum"));
        let bad_lo =
            "{\"type\":\"hist\",\"name\":\"x\",\"unit\":\"us\",\"count\":1,\"buckets\":[[3,1]]}";
        assert!(validate_line(bad_lo).unwrap_err().contains("power of two"));
    }

    #[test]
    fn escapes_round_trip() {
        let c = Collector::new();
        {
            let mut s = c.span("x");
            s.field_str("label", "quote\" slash\\ nl\n tab\t");
        }
        let mut buf = Vec::new();
        c.write_ndjson(&mut buf, &[("cmd", "a\"b")]).unwrap();
        let text = String::from_utf8(buf).unwrap();
        validate_trace(&text).unwrap();
    }

    /// A written trace for structural-damage tests: two span names, one
    /// counter, two hists.
    fn sample_trace() -> String {
        let c = Collector::new();
        c.span("sweep.compile").finish();
        c.span("sweep.eval").finish();
        c.span("sweep.eval").finish();
        c.count("sweep.cache.miss", 1);
        c.count("sweep.cache.hit", 2);
        let mut buf = Vec::new();
        c.write_ndjson(&mut buf, &[("cmd", "sweep")]).unwrap();
        String::from_utf8(buf).unwrap()
    }

    #[test]
    fn rejects_span_after_summary_sections() {
        let text = sample_trace();
        let span = text
            .lines()
            .find(|l| l.contains("\"type\":\"span\""))
            .unwrap();
        let spliced = format!("{}{span}\n", text);
        let e = validate_trace(&spliced).unwrap_err();
        assert!(e.contains("span line after"), "{e}");
        assert!(e.starts_with("line "), "{e}");
    }

    #[test]
    fn rejects_non_monotonic_counters() {
        let text = sample_trace();
        let counters: Vec<&str> = text
            .lines()
            .filter(|l| l.contains("\"type\":\"counter\""))
            .collect();
        assert_eq!(counters.len(), 2);
        // Swap the two counter lines: names no longer ascend.
        let swapped: String = text
            .lines()
            .map(|l| {
                if l == counters[0] {
                    format!("{}\n", counters[1])
                } else if l == counters[1] {
                    format!("{}\n", counters[0])
                } else {
                    format!("{l}\n")
                }
            })
            .collect();
        let e = validate_trace(&swapped).unwrap_err();
        assert!(e.contains("non-monotonic"), "{e}");
        assert!(e.starts_with("line "), "{e}");
    }

    #[test]
    fn rejects_truncated_trace() {
        let text = sample_trace();
        // Dropping the final hist line orphans its spans.
        let truncated: String = text
            .lines()
            .take(text.lines().count() - 1)
            .map(|l| format!("{l}\n"))
            .collect();
        let e = validate_trace(&truncated).unwrap_err();
        assert!(e.contains("truncated"), "{e}");
        // Dropping one span line breaks its hist's count.
        let a_span = text
            .lines()
            .find(|l| l.contains("sweep.eval") && l.contains("\"type\":\"span\""))
            .unwrap();
        let mut removed_one = false;
        let spliced: String = text
            .lines()
            .filter(|l| {
                if *l == a_span && !removed_one {
                    removed_one = true;
                    false
                } else {
                    true
                }
            })
            .map(|l| format!("{l}\n"))
            .collect();
        let e = validate_trace(&spliced).unwrap_err();
        assert!(e.contains("truncated") && e.starts_with("line "), "{e}");
    }

    #[test]
    fn rejects_hist_without_spans() {
        let lone =
            "{\"type\":\"meta\",\"schema\":\"seqavf-trace/1\"}\n{\"type\":\"hist\",\"name\":\"x\",\"unit\":\"us\",\"count\":0,\"buckets\":[]}\n";
        let e = validate_trace(lone).unwrap_err();
        assert!(e.contains("no matching span"), "{e}");
    }

    #[test]
    fn bucket_lo_is_floor_power_of_two() {
        assert_eq!(bucket_lo(0), 0);
        assert_eq!(bucket_lo(1), 1);
        assert_eq!(bucket_lo(2), 2);
        assert_eq!(bucket_lo(3), 2);
        assert_eq!(bucket_lo(1023), 512);
        assert_eq!(bucket_lo(1024), 1024);
    }
}
