//! `trace-validate` — checks NDJSON traces against the `seqavf-trace/1`
//! schema.
//!
//! ```text
//! trace-validate <trace.ndjson> [more.ndjson ...]
//! ```
//!
//! Exits 0 when every file validates, 1 otherwise. CI runs this on traces
//! emitted by the CLI's `--trace-out` to keep the schema honest.

use std::process::ExitCode;

fn main() -> ExitCode {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: trace-validate <trace.ndjson> [more.ndjson ...]");
        return ExitCode::FAILURE;
    }
    let mut ok = true;
    for path in &paths {
        match std::fs::read_to_string(path) {
            Err(e) => {
                eprintln!("{path}: cannot read: {e}");
                ok = false;
            }
            Ok(text) => match seqavf_obs::validate_trace(&text) {
                Ok(stats) => println!(
                    "{path}: OK ({} spans, {} counters, {} histograms)",
                    stats.spans, stats.counters, stats.hists
                ),
                Err(e) => {
                    eprintln!("{path}: INVALID: {e}");
                    ok = false;
                }
            },
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
