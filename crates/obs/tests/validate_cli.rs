//! End-to-end tests of the `trace-validate` binary: valid sweep-shaped
//! traces pass, damaged ones fail with a nonzero exit and a line-numbered
//! message on stderr.

use std::path::PathBuf;
use std::process::Command;

use seqavf_obs::Collector;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_trace-validate")
}

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("seqavf-validate-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// A trace shaped like real `sweep --trace-out` output: compile + eval
/// spans and the cache counters.
fn sweep_trace() -> String {
    let c = Collector::new();
    {
        let mut s = c.span("sweep.compile");
        s.field_u64("nodes", 314);
        s.field_u64("sum_ops", 53);
    }
    for _ in 0..3 {
        let mut s = c.span("sweep.eval");
        s.field_u64("nodes", 314);
        s.finish();
    }
    c.count("sweep.cache.miss", 1);
    let mut buf = Vec::new();
    c.write_ndjson(&mut buf, &[("cmd", "sweep")]).unwrap();
    String::from_utf8(buf).unwrap()
}

fn run(paths: &[&PathBuf]) -> (bool, String, String) {
    let out = Command::new(bin())
        .args(paths.iter().map(|p| p.as_os_str()))
        .output()
        .expect("spawn trace-validate");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn accepts_valid_sweep_trace() {
    let path = temp_path("valid.ndjson");
    std::fs::write(&path, sweep_trace()).unwrap();
    let (ok, stdout, stderr) = run(&[&path]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("OK"), "{stdout}");
}

#[test]
fn rejects_truncated_trace_with_line_number() {
    let text = sweep_trace();
    // Cut the trace mid-file: drop the hist tail.
    let cut: String = text
        .lines()
        .take_while(|l| !l.contains("\"type\":\"hist\""))
        .map(|l| format!("{l}\n"))
        .collect();
    let path = temp_path("truncated.ndjson");
    std::fs::write(&path, cut).unwrap();
    let (ok, _, stderr) = run(&[&path]);
    assert!(!ok);
    assert!(stderr.contains("INVALID"), "{stderr}");
    assert!(stderr.contains("truncated"), "{stderr}");
}

#[test]
fn rejects_span_count_mismatch_with_line_number() {
    let text = sweep_trace();
    // Remove one sweep.eval span: its hist now over-counts.
    let mut removed = false;
    let damaged: String = text
        .lines()
        .filter(|l| {
            if !removed && l.contains("\"type\":\"span\"") && l.contains("sweep.eval") {
                removed = true;
                false
            } else {
                true
            }
        })
        .map(|l| format!("{l}\n"))
        .collect();
    let path = temp_path("mismatch.ndjson");
    std::fs::write(&path, damaged).unwrap();
    let (ok, _, stderr) = run(&[&path]);
    assert!(!ok);
    assert!(stderr.contains("INVALID: line "), "{stderr}");
}

#[test]
fn rejects_non_monotonic_counters_with_line_number() {
    let c = Collector::new();
    c.span("sweep.eval").finish();
    c.count("sweep.cache.hit", 1);
    c.count("sweep.cache.miss", 1);
    let mut buf = Vec::new();
    c.write_ndjson(&mut buf, &[]).unwrap();
    let text = String::from_utf8(buf).unwrap();
    let counters: Vec<String> = text
        .lines()
        .filter(|l| l.contains("\"type\":\"counter\""))
        .map(str::to_owned)
        .collect();
    assert_eq!(counters.len(), 2);
    let swapped: String = text
        .lines()
        .map(|l| {
            if l == counters[0] {
                format!("{}\n", counters[1])
            } else if l == counters[1] {
                format!("{}\n", counters[0])
            } else {
                format!("{l}\n")
            }
        })
        .collect();
    let path = temp_path("nonmono.ndjson");
    std::fs::write(&path, swapped).unwrap();
    let (ok, _, stderr) = run(&[&path]);
    assert!(!ok);
    assert!(stderr.contains("non-monotonic"), "{stderr}");
    assert!(stderr.contains("INVALID: line "), "{stderr}");
}

#[test]
fn rejects_bad_section_order() {
    let text = sweep_trace();
    let a_span = text
        .lines()
        .find(|l| l.contains("\"type\":\"span\""))
        .unwrap();
    let spliced = format!("{text}{a_span}\n");
    let path = temp_path("order.ndjson");
    std::fs::write(&path, spliced).unwrap();
    let (ok, _, stderr) = run(&[&path]);
    assert!(!ok);
    assert!(stderr.contains("span line after"), "{stderr}");
}

#[test]
fn one_bad_file_fails_the_whole_invocation() {
    let good = temp_path("good.ndjson");
    std::fs::write(&good, sweep_trace()).unwrap();
    let bad = temp_path("bad.ndjson");
    std::fs::write(&bad, "not json\n").unwrap();
    let (ok, stdout, stderr) = run(&[&good, &bad]);
    assert!(!ok);
    assert!(stdout.contains("OK"), "{stdout}");
    assert!(stderr.contains("INVALID"), "{stderr}");
}
