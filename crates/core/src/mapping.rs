//! Structure-to-RTL mapping and pAVF input tables (§5.1 steps 2 and 4).
//!
//! The ACE model reports port AVFs per *performance-model* structure; the
//! netlist declares *RTL* structures (banks of bit cells). The
//! [`StructureMapping`] records which performance structure's measured port
//! AVFs drive each RTL structure's cells — "often an individual structure
//! is composed of several arrays … some of the arrays … in a different
//! FUB", so many RTL structures may map to one performance structure.
//!
//! [`PavfInputs`] carries the measured values themselves: per-structure
//! `(pAVF_R, pAVF_W)` pairs plus optional structure AVFs (Equation 3) used
//! as the final values for structure cells.

use std::collections::BTreeMap;

use seqavf_netlist::graph::{Netlist, StructId};
use serde::{Deserialize, Serialize};

use crate::pavf::Pavf;

/// Measured port AVFs of one structure.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PortPavf {
    /// `pAVF_R` — ACE read rate.
    pub read: Pavf,
    /// `pAVF_W` — ACE write rate.
    pub write: Pavf,
}

impl PortPavf {
    /// Creates a pair from raw probabilities (clamped).
    pub fn new(read: f64, write: f64) -> Self {
        PortPavf {
            read: Pavf::new(read),
            write: Pavf::new(write),
        }
    }
}

/// Mapping from netlist structures to performance-model structure names.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StructureMapping {
    by_struct: BTreeMap<u32, String>,
}

impl StructureMapping {
    /// Creates an empty mapping.
    pub fn new() -> Self {
        StructureMapping::default()
    }

    /// Builds a mapping from `(netlist structure id, perf name)` pairs, as
    /// produced by the synthetic design generator's ground truth.
    pub fn from_pairs<I>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (StructId, String)>,
    {
        let mut m = StructureMapping::new();
        for (sid, name) in pairs {
            m.insert(sid, name);
        }
        m
    }

    /// Maps `sid` to the performance-model structure `perf_name`.
    pub fn insert(&mut self, sid: StructId, perf_name: impl Into<String>) {
        self.by_struct.insert(sid.index() as u32, perf_name.into());
    }

    /// The performance-model name mapped to `sid`, if any.
    pub fn perf_name(&self, sid: StructId) -> Option<&str> {
        self.by_struct
            .get(&(sid.index() as u32))
            .map(String::as_str)
    }

    /// Number of mapped structures.
    pub fn len(&self) -> usize {
        self.by_struct.len()
    }

    /// Whether the mapping is empty.
    pub fn is_empty(&self) -> bool {
        self.by_struct.is_empty()
    }

    /// Structures of `netlist` that have no mapping (these fall back to the
    /// conservative default pAVFs).
    pub fn unmapped<'a>(&'a self, netlist: &'a Netlist) -> impl Iterator<Item = StructId> + 'a {
        netlist
            .structure_ids()
            .filter(move |sid| self.perf_name(*sid).is_none())
    }

    /// Serializes to the text map format (`<netlist struct name> <perf
    /// name>` per line), the equivalent of the paper's mapping file.
    pub fn to_text(&self, netlist: &Netlist) -> String {
        let mut out = String::new();
        for (sid_raw, perf) in &self.by_struct {
            let sid = StructId::from_index(*sid_raw as usize);
            out.push_str(netlist.structure(sid).name());
            out.push(' ');
            out.push_str(perf);
            out.push('\n');
        }
        out
    }

    /// Parses the text map format against a netlist. Unknown structure
    /// names are reported as errors.
    pub fn from_text(netlist: &Netlist, text: &str) -> Result<Self, String> {
        let mut m = StructureMapping::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut it = line.split_whitespace();
            let (Some(rtl), Some(perf)) = (it.next(), it.next()) else {
                return Err(format!("line {}: expected `<rtl> <perf>`", lineno + 1));
            };
            let sid = netlist
                .lookup_structure(rtl)
                .ok_or_else(|| format!("line {}: unknown structure `{rtl}`", lineno + 1))?;
            m.insert(sid, perf);
        }
        Ok(m)
    }
}

/// The measured inputs to a SART run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PavfInputs {
    /// Port AVFs keyed by performance-model structure name.
    pub ports: BTreeMap<String, PortPavf>,
    /// Structure AVFs (Equation 3) keyed by performance-model structure
    /// name; used as the final AVF of structure cells ("the estimate value
    /// is discarded in favor of the computed value", §4.2).
    pub structure_avfs: BTreeMap<String, f64>,
}

impl PavfInputs {
    /// Creates an empty input table.
    pub fn new() -> Self {
        PavfInputs::default()
    }

    /// Inserts a structure's port AVFs.
    pub fn set_port(&mut self, name: impl Into<String>, read: f64, write: f64) -> &mut Self {
        self.ports.insert(name.into(), PortPavf::new(read, write));
        self
    }

    /// Inserts a structure's AVF.
    pub fn set_structure_avf(&mut self, name: impl Into<String>, avf: f64) -> &mut Self {
        self.structure_avfs.insert(name.into(), avf.clamp(0.0, 1.0));
        self
    }

    /// Port AVFs for `name`, if measured.
    pub fn port(&self, name: &str) -> Option<PortPavf> {
        self.ports.get(name).copied()
    }

    /// Structure AVF for `name`, if measured.
    pub fn structure_avf(&self, name: &str) -> Option<f64> {
        self.structure_avfs.get(name).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqavf_netlist::flatten::parse_netlist;

    fn netlist_with_structs() -> Netlist {
        parse_netlist(
            ".design x\n.fub f\n.input i\n.struct a 2\n.struct b 2\n.sw a[0] i\n.endfub\n.end\n",
        )
        .unwrap()
    }

    #[test]
    fn mapping_roundtrips_through_text() {
        let nl = netlist_with_structs();
        let sa = nl.lookup_structure("f.a").unwrap();
        let sb = nl.lookup_structure("f.b").unwrap();
        let mut m = StructureMapping::new();
        m.insert(sa, "rob");
        m.insert(sb, "issue_queue");
        let text = m.to_text(&nl);
        let m2 = StructureMapping::from_text(&nl, &text).unwrap();
        assert_eq!(m, m2);
        assert_eq!(m2.perf_name(sa), Some("rob"));
        assert_eq!(m2.len(), 2);
    }

    #[test]
    fn text_parser_rejects_unknown_structures() {
        let nl = netlist_with_structs();
        let e = StructureMapping::from_text(&nl, "nosuch rob\n").unwrap_err();
        assert!(e.contains("nosuch"));
    }

    #[test]
    fn text_parser_skips_comments_and_blanks() {
        let nl = netlist_with_structs();
        let m = StructureMapping::from_text(&nl, "# comment\n\nf.a rob\n").unwrap();
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn unmapped_structures_listed() {
        let nl = netlist_with_structs();
        let sa = nl.lookup_structure("f.a").unwrap();
        let mut m = StructureMapping::new();
        m.insert(sa, "rob");
        let unmapped: Vec<_> = m.unmapped(&nl).collect();
        assert_eq!(unmapped.len(), 1);
        assert_eq!(nl.structure(unmapped[0]).name(), "f.b");
    }

    #[test]
    fn inputs_clamp_and_lookup() {
        let mut p = PavfInputs::new();
        p.set_port("rob", 0.4, 0.3).set_structure_avf("rob", 1.7);
        assert_eq!(p.port("rob").unwrap().read.value(), 0.4);
        assert_eq!(p.structure_avf("rob"), Some(1.0));
        assert_eq!(p.port("nope"), None);
    }
}
