//! SART — the Sequential AVF Resolution Tool (the paper's primary
//! contribution, §4–§5).
//!
//! SART computes an AVF for **every sequential node** in an RTL netlist
//! without simulating the RTL. It consumes:
//!
//! 1. a flattened node graph (`seqavf-netlist`),
//! 2. a table of **port AVFs** per ACE-modeled structure, produced by the
//!    ACE-instrumented performance model (`seqavf-perf`), and
//! 3. a mapping from netlist structures to performance-model structure
//!    names (§5.1 step 4).
//!
//! and propagates the port AVFs through the node graph:
//!
//! - **Forward** from structure read ports (§4.1.1): pipelines copy the
//!   value, logical joins take the set-union of their inputs (a capped sum
//!   over distinct pAVF terms), distribution splits copy to each branch.
//! - **Backward** from structure write ports (§4.1.2): pipelines copy,
//!   joins give each input the output's value, splits give the stem the
//!   union of its branches.
//! - Every node resolves to `MIN(forward, backward)` (Table 1).
//!
//! Loops are detected and broken: sequential nodes on cycles are treated as
//! structures with an injected static pAVF (0.3 by default, §4.3).
//! Configuration control registers are identified by naming convention and
//! treated as structures with `pAVF_R = 1` whose write-port walks are
//! omitted (§5.1). The design is analyzed per functional block with a
//! relaxation loop that merges boundary (FUBIO) values after every
//! iteration (§5.2), and the whole propagation is *symbolic*: every node
//! ends up with a closed-form expression over structure pAVF terms that can
//! be re-evaluated instantly for new workloads (§5.2).
//!
//! # Quick start
//!
//! See [`engine::SartEngine`] and `examples/quickstart.rs` in the
//! repository root, which reproduces the paper's Figure 7 worked example.

pub mod arena;
pub mod classify;
pub mod compile;
pub mod due;
pub mod engine;
pub mod fixpoint;
pub mod mapping;
pub mod numeric;
pub mod pavf;
pub mod relax;
pub mod report;
pub mod sweep;
pub mod walk;

pub use arena::{SetId, TermId, TermKind, TermTable, UnionArena};
pub use classify::{NodeRole, RoleMap};
pub use compile::{CompileStats, CompiledSweep, PatchStats};
pub use due::{AvfSplit, DueAnalysis};
pub use engine::{SartConfig, SartEngine, SartResult, WarmStatus};
pub use fixpoint::{SeedPlan, StoredFixpoint};
pub use mapping::{PavfInputs, PortPavf, StructureMapping};
pub use numeric::{solve_parallel, NumericOutcome};
pub use pavf::Pavf;
pub use report::{FubAvfRow, SartSummary};
pub use sweep::{
    cache_key_parts, obtain_compiled_traced, obtain_compiled_warm_traced, run_sweep,
    run_sweep_traced, CacheStatus, PatchStatus, SweepCache, SweepOptions, SweepOutcome,
};
