//! The naive *numeric* propagation engine: capped-sum unions over `f64`
//! values instead of symbolic term sets.
//!
//! This engine exists for two reasons:
//!
//! 1. **Ablation** — it is exactly the propagation one gets *without* the
//!    paper's set-theoretic simplification. Where a value reconverges
//!    (Figure 7's G2: `pAVF₁ ∪ (pAVF₁ ∪ pAVF₂)`), the numeric union adds
//!    `pAVF₁` twice; the symbolic engine's set semantics count it once.
//!    Numeric results therefore dominate symbolic results node-by-node,
//!    and the gap measures what the set representation buys.
//! 2. **Parallelism** — per-iteration FUB passes are independent given the
//!    FUBIO snapshot (Jacobi relaxation), so they parallelize trivially
//!    with scoped threads. The symbolic engine parallelizes the same way
//!    via per-worker arena shards (see [`crate::relax`]).

use seqavf_netlist::graph::NodeId;

use crate::walk::Propagator;

/// Result of a numeric relaxation.
#[derive(Debug, Clone, PartialEq)]
pub struct NumericOutcome {
    /// Forward value per node.
    pub fwd: Vec<f64>,
    /// Backward value per node.
    pub bwd: Vec<f64>,
    /// Iterations executed.
    pub iterations: usize,
    /// Whether the values stopped moving before the cap.
    pub converged: bool,
}

impl NumericOutcome {
    /// The resolved numeric AVF of a node: `MIN(forward, backward)`.
    pub fn avf(&self, id: NodeId) -> f64 {
        self.fwd[id.index()].min(self.bwd[id.index()])
    }
}

/// Runs FUB-partitioned numeric relaxation over the same prepared walk
/// state the symbolic engine uses. `values` is a term-value vector (from
/// [`crate::engine::SartResult::term_values`] or
/// [`crate::arena::TermTable::values`]).
pub fn solve_parallel(
    prop: &Propagator<'_>,
    values: &[f64],
    max_iterations: usize,
    threads: usize,
    eps: f64,
) -> NumericOutcome {
    let nl = prop.nl;
    let n = nl.node_count();
    // Numeric source values from the prepared source sets.
    let src_val = |s: Option<crate::arena::SetId>| s.map(|s| prop.arena.eval(s, values));
    let fwd_source: Vec<Option<f64>> = prop.prep.fwd_source.iter().map(|&s| src_val(s)).collect();
    let bwd_source: Vec<Option<f64>> = prop.prep.bwd_source.iter().map(|&s| src_val(s)).collect();
    let bwd_contrib: Vec<Option<f64>> = prop.prep.bwd_contrib.iter().map(|&s| src_val(s)).collect();

    // Conservative initial annotation (Equation 7).
    let mut fwd = vec![1.0f64; n];
    let mut bwd = vec![1.0f64; n];
    let threads = threads.max(1);
    let mut iterations = 0;
    let mut converged = false;

    while iterations < max_iterations {
        iterations += 1;
        let snap_f = fwd.clone();
        let snap_b = bwd.clone();
        let fub_ids: Vec<_> = nl.fub_ids().collect();
        let chunk = fub_ids.len().div_ceil(threads);

        let pass = |fubs: &[seqavf_netlist::graph::FubId]| -> Vec<(usize, f64, f64)> {
            let mut local_f = snap_f.clone();
            let mut local_b = snap_b.clone();
            let mut out = Vec::new();
            for &fub in fubs {
                let order = &prop.prep.fub_topo[fub.index()];
                for &node in order {
                    let i = node.index();
                    local_f[i] = match fwd_source[i] {
                        Some(v) => v,
                        // Zero-fanin non-source nodes resolve to the
                        // conservative 1.0, matching the symbolic walk's
                        // TOP (see `Propagator::forward_pass`).
                        None if nl.fanin(node).is_empty() => 1.0,
                        None => {
                            let mut acc = 0.0;
                            for &f in nl.fanin(node) {
                                let v = if nl.fub(f) == fub {
                                    local_f[f.index()]
                                } else {
                                    snap_f[f.index()]
                                };
                                acc += v;
                            }
                            acc.min(1.0)
                        }
                    };
                }
                for &node in order.iter().rev() {
                    let i = node.index();
                    local_b[i] = match bwd_source[i] {
                        Some(v) => v,
                        None => {
                            let mut acc = 0.0;
                            for &m in nl.fanout(node) {
                                let v = match bwd_contrib[m.index()] {
                                    Some(c) => c,
                                    None => {
                                        if nl.fub(m) == fub {
                                            local_b[m.index()]
                                        } else {
                                            snap_b[m.index()]
                                        }
                                    }
                                };
                                acc += v;
                            }
                            acc.min(1.0)
                        }
                    };
                }
                for &node in order {
                    let i = node.index();
                    out.push((i, local_f[i], local_b[i]));
                }
            }
            out
        };

        let updates: Vec<(usize, f64, f64)> = if threads == 1 || fub_ids.len() == 1 {
            pass(&fub_ids)
        } else {
            std::thread::scope(|s| {
                let handles: Vec<_> = fub_ids
                    .chunks(chunk)
                    .map(|part| s.spawn(|| pass(part)))
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("numeric worker panicked"))
                    .collect()
            })
        };

        let mut max_delta = 0.0f64;
        for (i, f, b) in updates {
            max_delta = max_delta.max((fwd[i] - f).abs()).max((bwd[i] - b).abs());
            fwd[i] = f;
            bwd[i] = b;
        }
        if max_delta <= eps {
            converged = true;
            break;
        }
    }

    NumericOutcome {
        fwd,
        bwd,
        iterations,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::classify;
    use crate::engine::{SartConfig, SartEngine};
    use crate::mapping::{PavfInputs, StructureMapping};
    use crate::walk::prepare;
    use seqavf_netlist::flatten::parse_netlist;
    use seqavf_netlist::graph::Netlist;
    use seqavf_netlist::scc::find_loops;

    /// Tree-shaped circuit: no reconvergent fan-in/out, so the numeric and
    /// symbolic engines must agree exactly.
    const TREE: &str = r"
.design t
.fub f
  .struct s1 1
  .struct s2 1
  .struct s3 1
  .flop q1 s1[0]
  .flop q2 s2[0]
  .gate and g q1 q2
  .flop q3 g
  .sw s3[0] q3
.endfub
.end
";

    /// Reconvergent circuit: Figure 7's shape, where set dedup matters.
    const RECONVERGE: &str = r"
.design r
.fub f
  .struct s1 1
  .struct s2 1
  .struct s3 1
  .flop q1a s1[0]
  .flop q1b s2[0]
  .flop q2a q1a
  .gate nor g1 q2a q1b
  .gate nor g2 q2a g1
  .flop q3a g2
  .sw s3[0] q3a
.endfub
.end
";

    fn run_both(
        text: &str,
        inputs: &PavfInputs,
    ) -> (Netlist, crate::engine::SartResult, NumericOutcome) {
        let nl = parse_netlist(text).unwrap();
        let engine = SartEngine::new(&nl, &StructureMapping::new(), SartConfig::default());
        let symbolic = engine.run(inputs);

        let loops = find_loops(&nl);
        let roles = classify(&nl, &loops, &["creg".to_owned()]);
        let mut arena = crate::arena::UnionArena::new();
        let prep = prepare(&nl, roles, &StructureMapping::new(), &mut arena);
        let prop = Propagator::new(&nl, prep, arena);
        let values = symbolic.term_values(inputs);
        let numeric = solve_parallel(&prop, &values, 20, 2, 1e-12);
        (nl, symbolic, numeric)
    }

    fn inputs() -> PavfInputs {
        let mut p = PavfInputs::new();
        p.set_port("f.s1", 0.10, 0.3);
        p.set_port("f.s2", 0.02, 0.3);
        p.set_port("f.s3", 0.4, 0.25);
        p
    }

    #[test]
    fn tree_circuits_agree_exactly() {
        let (nl, symbolic, numeric) = run_both(TREE, &inputs());
        let i = inputs();
        for id in nl.nodes() {
            let s = symbolic
                .forward_value(id, &i)
                .min(symbolic.backward_value(id, &i));
            assert!(
                (numeric.avf(id) - s).abs() < 1e-12,
                "{}: numeric {} symbolic {}",
                nl.name(id),
                numeric.avf(id),
                s
            );
        }
        assert!(numeric.converged);
    }

    #[test]
    fn numeric_dominates_symbolic_on_reconvergence() {
        let (nl, symbolic, numeric) = run_both(RECONVERGE, &inputs());
        let i = inputs();
        let mut strictly_greater = 0;
        for id in nl.nodes() {
            let sf = symbolic.forward_value(id, &i);
            let nf = numeric.fwd[id.index()];
            assert!(nf + 1e-12 >= sf, "{}", nl.name(id));
            if nf > sf + 1e-12 {
                strictly_greater += 1;
            }
        }
        // G2 double-counts pAVF_1: 0.10 + 0.12 = 0.22 vs the symbolic 0.12.
        let g2 = nl.lookup("f.g2").unwrap();
        assert!((numeric.fwd[g2.index()] - 0.22).abs() < 1e-12);
        assert!((symbolic.forward_value(g2, &i) - 0.12).abs() < 1e-12);
        assert!(strictly_greater > 0, "dedup must matter somewhere");
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let nl = parse_netlist(RECONVERGE).unwrap();
        let engine = SartEngine::new(&nl, &StructureMapping::new(), SartConfig::default());
        let symbolic = engine.run(&inputs());
        let loops = find_loops(&nl);
        let roles = classify(&nl, &loops, &["creg".to_owned()]);
        let mut arena = crate::arena::UnionArena::new();
        let prep = prepare(&nl, roles, &StructureMapping::new(), &mut arena);
        let prop = Propagator::new(&nl, prep, arena);
        let values = symbolic.term_values(&inputs());
        let one = solve_parallel(&prop, &values, 20, 1, 1e-12);
        let four = solve_parallel(&prop, &values, 20, 4, 1e-12);
        assert_eq!(one.fwd, four.fwd);
        assert_eq!(one.bwd, four.bwd);
    }

    #[test]
    fn iteration_cap_respected() {
        let nl = parse_netlist(RECONVERGE).unwrap();
        let engine = SartEngine::new(&nl, &StructureMapping::new(), SartConfig::default());
        let symbolic = engine.run(&inputs());
        let loops = find_loops(&nl);
        let roles = classify(&nl, &loops, &["creg".to_owned()]);
        let mut arena = crate::arena::UnionArena::new();
        let prep = prepare(&nl, roles, &StructureMapping::new(), &mut arena);
        let prop = Propagator::new(&nl, prep, arena);
        let values = symbolic.term_values(&inputs());
        let out = solve_parallel(&prop, &values, 1, 1, 0.0);
        assert_eq!(out.iterations, 1);
    }
}
