//! Per-FUB AVF reporting (the paper's Figure 9 and §6.1 counts).

use seqavf_netlist::graph::Netlist;
use serde::{Deserialize, Serialize};

use crate::engine::SartResult;

/// Per-FUB averages after the final relaxation iteration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FubAvfRow {
    /// FUB name.
    pub fub: String,
    /// Sequential (flop/latch) nodes in the FUB.
    pub seq_count: usize,
    /// All nodes in the FUB.
    pub node_count: usize,
    /// Mean AVF over the FUB's sequential nodes.
    pub seq_avf: f64,
    /// Mean AVF over all of the FUB's nodes (combinational + sequential +
    /// boundary), the paper's "node pAVF" series.
    pub node_avf: f64,
}

/// Whole-design summary of a SART run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SartSummary {
    /// One row per FUB, in FUB-id order.
    pub rows: Vec<FubAvfRow>,
    /// Sequential-count-weighted mean sequential AVF ("the overall averages
    /// are weighted to account for the actual number of sequentials in each
    /// FUB").
    pub weighted_seq_avf: f64,
    /// Node-count-weighted mean AVF over all nodes.
    pub weighted_node_avf: f64,
    /// Control-register bits identified (§6.1: 6,825 on the Xeon core).
    pub control_reg_bits: usize,
    /// Sequential bits on loops (§6.1: 201,530 on the Xeon core).
    pub loop_seq_bits: usize,
    /// Fraction of nodes visited by walks (§6.1: >98%).
    pub visited_fraction: f64,
    /// Relaxation iterations executed (§6.1: 20).
    pub iterations: usize,
}

impl SartSummary {
    /// Builds the summary from a run's result.
    pub fn new(nl: &Netlist, result: &SartResult) -> Self {
        let nf = nl.fub_count();
        let mut seq_sum = vec![0.0; nf];
        let mut seq_cnt = vec![0usize; nf];
        let mut node_sum = vec![0.0; nf];
        let mut node_cnt = vec![0usize; nf];
        for id in nl.nodes() {
            let f = nl.fub(id).index();
            let v = result.avf(id);
            node_sum[f] += v;
            node_cnt[f] += 1;
            if nl.kind(id).is_sequential() {
                seq_sum[f] += v;
                seq_cnt[f] += 1;
            }
        }
        let rows: Vec<FubAvfRow> = (0..nf)
            .map(|f| FubAvfRow {
                fub: nl
                    .fub_name(seqavf_netlist::graph::FubId::from_index(f))
                    .to_owned(),
                seq_count: seq_cnt[f],
                node_count: node_cnt[f],
                seq_avf: if seq_cnt[f] == 0 {
                    0.0
                } else {
                    seq_sum[f] / seq_cnt[f] as f64
                },
                node_avf: if node_cnt[f] == 0 {
                    0.0
                } else {
                    node_sum[f] / node_cnt[f] as f64
                },
            })
            .collect();
        let total_seq: usize = seq_cnt.iter().sum();
        let total_node: usize = node_cnt.iter().sum();
        SartSummary {
            weighted_seq_avf: if total_seq == 0 {
                0.0
            } else {
                seq_sum.iter().sum::<f64>() / total_seq as f64
            },
            weighted_node_avf: if total_node == 0 {
                0.0
            } else {
                node_sum.iter().sum::<f64>() / total_node as f64
            },
            rows,
            control_reg_bits: result.roles.control_reg_bits(),
            loop_seq_bits: result.roles.loop_seq_bits(),
            visited_fraction: result.visited_fraction(nl),
            iterations: result.iterations(),
        }
    }

    /// Renders an aligned text table (one row per FUB plus the weighted
    /// totals), suitable for terminal output.
    pub fn to_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<12} {:>10} {:>10} {:>9} {:>9}",
            "FUB", "seqs", "nodes", "seqAVF", "nodeAVF"
        );
        for r in &self.rows {
            let _ = writeln!(
                out,
                "{:<12} {:>10} {:>10} {:>9.4} {:>9.4}",
                r.fub, r.seq_count, r.node_count, r.seq_avf, r.node_avf
            );
        }
        let _ = writeln!(
            out,
            "{:<12} {:>10} {:>10} {:>9.4} {:>9.4}",
            "WEIGHTED",
            self.rows.iter().map(|r| r.seq_count).sum::<usize>(),
            self.rows.iter().map(|r| r.node_count).sum::<usize>(),
            self.weighted_seq_avf,
            self.weighted_node_avf
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{SartConfig, SartEngine};
    use crate::mapping::{PavfInputs, StructureMapping};
    use seqavf_netlist::flatten::parse_netlist;

    fn summary() -> SartSummary {
        let nl = parse_netlist(
            r"
.design x
.fub a
  .struct s1 1
  .flop q1 s1[0]
  .flop q2 q1
  .output o q2
.endfub
.fub b
  .flop r a.o
  .output o2 r
.endfub
.end
",
        )
        .unwrap();
        let mut inputs = PavfInputs::new();
        inputs.set_port("a.s1", 0.2, 0.4);
        let engine = SartEngine::new(&nl, &StructureMapping::new(), SartConfig::default());
        let r = engine.run(&inputs);
        SartSummary::new(&nl, &r)
    }

    #[test]
    fn rows_cover_all_fubs() {
        let s = summary();
        assert_eq!(s.rows.len(), 2);
        assert_eq!(s.rows[0].fub, "a");
        assert_eq!(s.rows[0].seq_count, 2);
        assert_eq!(s.rows[1].seq_count, 1);
    }

    #[test]
    fn weighted_average_weights_by_seq_count() {
        let s = summary();
        let manual = (s.rows[0].seq_avf * 2.0 + s.rows[1].seq_avf) / 3.0;
        assert!((s.weighted_seq_avf - manual).abs() < 1e-12);
    }

    #[test]
    fn avfs_track_source_pavf() {
        let s = summary();
        // Everything downstream of s1 with boundary_out at 1.0: forward
        // 0.2 dominates.
        assert!((s.rows[0].seq_avf - 0.2).abs() < 1e-12);
        assert!((s.rows[1].seq_avf - 0.2).abs() < 1e-12);
    }

    #[test]
    fn table_renders() {
        let s = summary();
        let t = s.to_table();
        assert!(t.contains("FUB"));
        assert!(t.contains("WEIGHTED"));
        assert!(t.lines().count() >= 4);
    }

    #[test]
    fn serializes_to_json() {
        let s = summary();
        let j = serde_json::to_string(&s).unwrap();
        let back: SartSummary = serde_json::from_str(&j).unwrap();
        assert_eq!(s, back);
    }
}
