//! The port-AVF probability type.
//!
//! A pAVF is "essentially a signal probability (the probability of an ACE
//! bit instead of the probability of a one or zero)" (§4.1.2). The
//! propagation rules need exactly three operations on it: **union** (a
//! capped sum, for logical joins and distribution splits under the paper's
//! no-overlap assumption), **min** (the node-update rule, Equation 7, and
//! the final resolution, Table 1), and comparison.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A probability in `[0, 1]` that a bit carries ACE data.
///
/// Construction clamps into range; `NaN` clamps to zero (the least
/// conservative direction is never taken silently — `NaN` arises only from
/// programming errors upstream and zero makes them visible in results).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Pavf(f64);

impl Pavf {
    /// The zero probability (no ACE data ever).
    pub const ZERO: Pavf = Pavf(0.0);
    /// The saturated probability (conservative initial annotation, Eq. 7).
    pub const ONE: Pavf = Pavf(1.0);

    /// Creates a pAVF, clamping into `[0, 1]`.
    pub fn new(v: f64) -> Self {
        if v.is_nan() {
            Pavf(0.0)
        } else {
            Pavf(v.clamp(0.0, 1.0))
        }
    }

    /// The raw probability.
    pub fn value(self) -> f64 {
        self.0
    }

    /// Set-union under the no-overlap assumption: a sum capped at 1
    /// (Equations 5 and 10).
    pub fn union(self, other: Pavf) -> Pavf {
        Pavf((self.0 + other.0).min(1.0))
    }

    /// The node-update / resolution rule: the smaller conservative
    /// estimate wins (Equation 7, Table 1).
    pub fn min(self, other: Pavf) -> Pavf {
        if other.0 < self.0 {
            other
        } else {
            self
        }
    }
}

impl Default for Pavf {
    /// Nodes "conservatively start with a pAVF of 1.0" (§4.1.1).
    fn default() -> Self {
        Pavf::ONE
    }
}

impl From<f64> for Pavf {
    fn from(v: f64) -> Self {
        Pavf::new(v)
    }
}

impl fmt::Display for Pavf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4}", self.0)
    }
}

impl std::iter::Sum for Pavf {
    /// Capped sum — the n-ary union.
    fn sum<I: Iterator<Item = Pavf>>(iter: I) -> Pavf {
        iter.fold(Pavf::ZERO, Pavf::union)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_clamps() {
        assert_eq!(Pavf::new(0.5).value(), 0.5);
        assert_eq!(Pavf::new(-3.0), Pavf::ZERO);
        assert_eq!(Pavf::new(7.0), Pavf::ONE);
        assert_eq!(Pavf::new(f64::NAN), Pavf::ZERO);
    }

    #[test]
    fn union_caps_at_one() {
        let a = Pavf::new(0.7);
        let b = Pavf::new(0.6);
        assert_eq!(a.union(b), Pavf::ONE);
        assert!((Pavf::new(0.1).union(Pavf::new(0.02)).value() - 0.12).abs() < 1e-12);
    }

    #[test]
    fn union_is_commutative_and_has_identity() {
        let a = Pavf::new(0.3);
        let b = Pavf::new(0.4);
        assert_eq!(a.union(b), b.union(a));
        assert_eq!(a.union(Pavf::ZERO), a);
    }

    #[test]
    fn min_picks_smaller() {
        assert_eq!(Pavf::new(0.3).min(Pavf::new(0.5)).value(), 0.3);
        assert_eq!(Pavf::new(0.5).min(Pavf::new(0.3)).value(), 0.3);
    }

    #[test]
    fn default_is_conservative_one() {
        assert_eq!(Pavf::default(), Pavf::ONE);
    }

    #[test]
    fn sum_is_capped_union() {
        let s: Pavf = [0.4, 0.5, 0.6].into_iter().map(Pavf::new).sum();
        assert_eq!(s, Pavf::ONE);
        let s: Pavf = [0.1, 0.2].into_iter().map(Pavf::new).sum();
        assert!((s.value() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn display_format() {
        assert_eq!(Pavf::new(0.125).to_string(), "0.1250");
    }
}
