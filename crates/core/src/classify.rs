//! Node-role classification: structure cells, control registers, loop
//! boundaries, and RTL boundaries.
//!
//! Before any walk, every node is assigned the role that determines how the
//! propagation treats it:
//!
//! - **Structure cells** are the measured sources and sinks (§4.1): walks
//!   start at their read side and terminate at their write side.
//! - **Control registers** are identified "usually by the RTL name or the
//!   driving clock" (§5.1); they get `pAVF_R = 1` and their write-port
//!   (backward) walks are omitted because writes are rare.
//! - **Loop sequentials** (flops/latches on cycles) are treated as
//!   structures with an injected static pAVF (§4.3); walks start and stop
//!   at these nodes.
//! - **Boundary** nodes are the edge of the RTL under analysis; circuits
//!   outside are grouped into pseudo-structures with their own pAVFs
//!   (§5.1).

use seqavf_netlist::graph::{Netlist, NodeId, NodeKind};
use seqavf_netlist::scc::LoopAnalysis;
use serde::{Deserialize, Serialize};

/// How the propagation treats a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeRole {
    /// Ordinary logic or sequential: annotated by walks.
    Normal,
    /// A bit cell of an ACE-modeled structure: measured source/sink.
    StructCell,
    /// Configuration control register: injected `pAVF_R`, no backward walk
    /// from its write port.
    ControlReg,
    /// Sequential element on a feedback loop: injected loop-boundary pAVF.
    LoopSeq,
    /// Primary input: forward walks start here with the boundary
    /// pseudo-structure's `pAVF_R`.
    BoundaryIn,
    /// Primary output with no on-chip consumers: backward walks start here
    /// with the boundary pseudo-structure's `pAVF_W`.
    BoundaryOut,
}

impl NodeRole {
    /// Whether the node is an injected source whose incoming propagation is
    /// cut (it behaves like a structure).
    pub fn is_injected(self) -> bool {
        matches!(
            self,
            NodeRole::StructCell | NodeRole::ControlReg | NodeRole::LoopSeq
        )
    }
}

/// Role assignment for every node of a netlist.
#[derive(Debug, Clone)]
pub struct RoleMap {
    roles: Vec<NodeRole>,
    control_reg_bits: usize,
    loop_seq_bits: usize,
}

impl RoleMap {
    /// The role of `id`.
    pub fn role(&self, id: NodeId) -> NodeRole {
        self.roles[id.index()]
    }

    /// Number of bits identified as configuration control registers (the
    /// paper's run found 6,825).
    pub fn control_reg_bits(&self) -> usize {
        self.control_reg_bits
    }

    /// Number of sequential bits on loops (the paper's run found 201,530).
    pub fn loop_seq_bits(&self) -> usize {
        self.loop_seq_bits
    }

    /// Iterates over `(node, role)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, NodeRole)> + '_ {
        self.roles
            .iter()
            .enumerate()
            .map(|(i, &r)| (NodeId::from_index(i), r))
    }
}

/// Classifies every node.
///
/// `ctrl_patterns` are substrings matched against node names to identify
/// control registers (the naming-convention heuristic of §5.1); the
/// default SART configuration uses `["creg"]`.
pub fn classify(nl: &Netlist, loops: &LoopAnalysis, ctrl_patterns: &[String]) -> RoleMap {
    let mut roles = Vec::with_capacity(nl.node_count());
    let mut control_reg_bits = 0;
    let mut loop_seq_bits = 0;
    for id in nl.nodes() {
        let role = match nl.kind(id) {
            NodeKind::StructCell { .. } => NodeRole::StructCell,
            NodeKind::Input => NodeRole::BoundaryIn,
            NodeKind::Output => {
                if nl.fanout(id).is_empty() {
                    NodeRole::BoundaryOut
                } else {
                    // An output consumed by another FUB is ordinary
                    // pass-through logic for the analysis.
                    NodeRole::Normal
                }
            }
            NodeKind::Seq { .. } => {
                let name = nl.name(id);
                if ctrl_patterns.iter().any(|p| name.contains(p.as_str())) {
                    control_reg_bits += 1;
                    NodeRole::ControlReg
                } else if loops.is_loop_node(id) {
                    loop_seq_bits += 1;
                    NodeRole::LoopSeq
                } else {
                    NodeRole::Normal
                }
            }
            NodeKind::Comb(_) => NodeRole::Normal,
        };
        roles.push(role);
    }
    RoleMap {
        roles,
        control_reg_bits,
        loop_seq_bits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqavf_netlist::flatten::parse_netlist;
    use seqavf_netlist::scc::find_loops;

    const TEXT: &str = r"
.design x
.fub f
  .input cfg
  .struct st 1
  .sw st[0] cfg
  .flop creg_mode cfg cfg
  .flop q1 st[0]
  .flop fsm_a fsm_g
  .gate or fsm_g fsm_a cfg
  .output o q1
.endfub
.fub g
  .gate buf pass f.o
  .output o2 pass
.endfub
.end
";

    fn setup() -> (Netlist, RoleMap) {
        let nl = parse_netlist(TEXT).unwrap();
        let loops = find_loops(&nl);
        let rm = classify(&nl, &loops, &["creg".to_owned()]);
        (nl, rm)
    }

    #[test]
    fn roles_assigned_as_expected() {
        let (nl, rm) = setup();
        assert_eq!(rm.role(nl.lookup("f.cfg").unwrap()), NodeRole::BoundaryIn);
        assert_eq!(
            rm.role(
                nl.lookup("st[0]")
                    .unwrap_or_else(|| nl.lookup("f.st[0]").unwrap())
            ),
            NodeRole::StructCell
        );
        assert_eq!(
            rm.role(nl.lookup("f.creg_mode").unwrap()),
            NodeRole::ControlReg
        );
        assert_eq!(rm.role(nl.lookup("f.q1").unwrap()), NodeRole::Normal);
        assert_eq!(rm.role(nl.lookup("f.fsm_a").unwrap()), NodeRole::LoopSeq);
        assert_eq!(rm.role(nl.lookup("f.fsm_g").unwrap()), NodeRole::Normal);
        assert_eq!(rm.role(nl.lookup("g.o2").unwrap()), NodeRole::BoundaryOut);
        // f.o is consumed by fub g, so it is pass-through.
        assert_eq!(rm.role(nl.lookup("f.o").unwrap()), NodeRole::Normal);
    }

    #[test]
    fn censuses_counted() {
        let (_, rm) = setup();
        assert_eq!(rm.control_reg_bits(), 1);
        assert_eq!(rm.loop_seq_bits(), 1);
    }

    #[test]
    fn injected_roles() {
        assert!(NodeRole::StructCell.is_injected());
        assert!(NodeRole::ControlReg.is_injected());
        assert!(NodeRole::LoopSeq.is_injected());
        assert!(!NodeRole::Normal.is_injected());
        assert!(!NodeRole::BoundaryIn.is_injected());
    }

    #[test]
    fn no_patterns_means_no_control_regs() {
        let nl = parse_netlist(TEXT).unwrap();
        let loops = find_loops(&nl);
        let rm = classify(&nl, &loops, &[]);
        assert_eq!(rm.control_reg_bits(), 0);
        // Without the control-reg role, creg_mode is an ordinary flop.
        assert_eq!(rm.role(nl.lookup("f.creg_mode").unwrap()), NodeRole::Normal);
    }

    #[test]
    fn iter_covers_all_nodes() {
        let (nl, rm) = setup();
        assert_eq!(rm.iter().count(), nl.node_count());
    }
}
