//! Compilation of resolved closed forms into a flat, CSE-deduplicated
//! term DAG — the engine behind the multi-workload sweep (§5.2).
//!
//! [`SartResult::reevaluate`] is already the paper's "plug new pAVFs into
//! the closed form equations" fast path, but it *interprets* the union-set
//! structure on every call: it evaluates **every** set the relaxation ever
//! interned (most are dead intermediates of the walks), re-matches each
//! node's role, and resolves struct-cell overrides through per-node string
//! map lookups. [`CompiledSweep`] lowers the resolved annotations once into
//! a three-level DAG —
//!
//! ```text
//! term leaves  →  capped-sum nodes (live sets only)  →  MIN nodes  →  node slots
//! ```
//!
//! — where both capped-sum and MIN nodes are hash-consed: every distinct
//! live set becomes exactly one sum node and every distinct `(F, B)` pair
//! exactly one MIN node, shared across all sequential bits that resolve to
//! it. A workload evaluation is then a single topological pass over the
//! flat op arrays plus a gather into the per-node AVF vector, with
//! struct-cell AVF overrides resolved once per distinct performance
//! structure instead of once per cell.
//!
//! The compiled path is **bit-identical** (`f64::to_bits`) to
//! [`SartResult::reevaluate`]: sums accumulate in the same (sorted
//! term-id) order, the cap and `MIN` use the same `f64` operations in the
//! same operand order, and overrides take the same precedence. A property
//! test (`tests/compiled_equivalence.rs`) pins this contract against the
//! interpreter and against fresh relaxations.
//!
//! [`CompiledSweep`] also serializes to a versioned text artifact
//! ([`CompiledSweep::to_text`] / [`CompiledSweep::from_text`]) so the sweep
//! cache ([`crate::sweep`]) can skip relaxation entirely on repeated
//! sweeps of the same design.

use std::collections::HashMap;

use seqavf_netlist::graph::{Netlist, NodeKind};
use seqavf_obs::Collector;

use crate::arena::{SetId, TermKind, TermTable};
use crate::classify::NodeRole;
use crate::engine::{term_values, SartConfig, SartResult};
use crate::fixpoint::nodes_by_fub;
use crate::mapping::PavfInputs;

/// Lane width of the batched evaluator: how many workload tables one op
/// walk evaluates together. Sized so the per-op lane arrays fit in stack
/// registers/L1 while still amortizing slot decode over a useful batch.
const MAX_LANES: usize = 16;

/// How one netlist node obtains its AVF from the evaluated DAG.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Slot {
    /// `MIN(F, B)` — index into the MIN-op array.
    Min(u32),
    /// Control register: the configured `ctrl_read_pavf` constant.
    Ctrl,
    /// Loop sequential: the configured `loop_pavf` constant.
    Loop,
    /// Structure cell: the measured structure AVF of `perf` when present,
    /// else the `MIN(F, B)` fallback.
    Struct { perf: u32, min: u32 },
}

/// Compile-time sharing statistics (reported through `sweep.compile`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompileStats {
    /// Netlist nodes covered (one slot each).
    pub nodes: usize,
    /// Distinct live sets lowered to capped-sum ops.
    pub sum_ops: usize,
    /// Distinct `(F, B)` pairs lowered to MIN ops.
    pub min_ops: usize,
    /// Sets the relaxation arena held in total (dead intermediates the
    /// compiled DAG does not evaluate).
    pub arena_sets: usize,
    /// Interned pAVF terms (DAG leaves).
    pub terms: usize,
}

/// What a DAG patch did, op by op (reported through the `sweep.patch`
/// span and the `sweep.patch.*` counters).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PatchStats {
    /// Node slots relocated verbatim from the old DAG (clean FUBs).
    pub slots_retained: usize,
    /// Node slots re-lowered from the new result (the dirty cone).
    pub slots_relowered: usize,
    /// Sum + MIN ops carried over from the old DAG.
    pub ops_retained: usize,
    /// Sum + MIN ops lowered fresh for the dirty cone.
    pub ops_added: usize,
    /// Old ops no clean slot references anymore, dropped at compaction.
    pub ops_orphaned: usize,
}

impl PatchStats {
    /// DAG nodes the patch wrote: re-lowered slots plus freshly lowered
    /// ops. The proportional-to-edit quantity — for a small edit this is
    /// far below the DAG's total op count.
    pub fn nodes_patched(&self) -> usize {
        self.slots_relowered + self.ops_added
    }
}

/// A compiled multi-workload evaluator: the hash-consed term DAG plus the
/// captured configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledSweep {
    config: SartConfig,
    terms: TermTable,
    /// Flattened term indices of every sum op, in sorted term-id order
    /// (matching [`crate::arena::UnionArena::eval`] accumulation order).
    sum_terms: Vec<u32>,
    /// `sum_bounds[k]..sum_bounds[k+1]` delimits sum op `k` in `sum_terms`.
    sum_bounds: Vec<u32>,
    /// MIN ops as `(forward sum, backward sum)` — operand order preserved.
    mins: Vec<(u32, u32)>,
    /// One slot per netlist node, indexed by `NodeId::index`.
    slots: Vec<Slot>,
    /// Distinct performance-structure names referenced by struct slots.
    perf_names: Vec<String>,
    /// Sets the source arena held (for [`CompileStats`] only).
    arena_sets: usize,
}

impl CompiledSweep {
    /// Lowers a resolved [`SartResult`] into the compiled DAG.
    pub fn compile(result: &SartResult, nl: &Netlist) -> CompiledSweep {
        Self::compile_traced(result, nl, &Collector::disabled())
    }

    /// [`CompiledSweep::compile`] with observability: one `sweep.compile`
    /// span carrying the sharing statistics.
    pub fn compile_traced(result: &SartResult, nl: &Netlist, obs: &Collector) -> CompiledSweep {
        let mut span = obs.span("sweep.compile");
        let n = nl.node_count();
        let mut sum_terms: Vec<u32> = Vec::new();
        let mut sum_bounds: Vec<u32> = vec![0];
        let mut sum_index: HashMap<SetId, u32> = HashMap::new();
        let mut mins: Vec<(u32, u32)> = Vec::new();
        let mut min_index: HashMap<(SetId, SetId), u32> = HashMap::new();
        let mut perf_names: Vec<String> = Vec::new();
        let mut perf_index: HashMap<String, u32> = HashMap::new();
        let mut slots: Vec<Slot> = Vec::with_capacity(n);

        let mut lower_sum =
            |s: SetId, sum_terms: &mut Vec<u32>, sum_bounds: &mut Vec<u32>| -> u32 {
                *sum_index.entry(s).or_insert_with(|| {
                    let k = sum_bounds.len() - 1;
                    sum_terms.extend(result.arena.terms(s).iter().map(|t| t.index() as u32));
                    sum_bounds.push(sum_terms.len() as u32);
                    u32::try_from(k).expect("sum op count fits u32")
                })
            };

        for id in nl.nodes() {
            let i = id.index();
            let slot = match result.roles.role(id) {
                NodeRole::ControlReg => Slot::Ctrl,
                NodeRole::LoopSeq => Slot::Loop,
                role => {
                    let pair = (result.fwd[i], result.bwd[i]);
                    let min = *min_index.entry(pair).or_insert_with(|| {
                        let a = lower_sum(pair.0, &mut sum_terms, &mut sum_bounds);
                        let b = lower_sum(pair.1, &mut sum_terms, &mut sum_bounds);
                        mins.push((a, b));
                        u32::try_from(mins.len() - 1).expect("min op count fits u32")
                    });
                    if role == NodeRole::StructCell {
                        let NodeKind::StructCell { structure, .. } = nl.kind(id) else {
                            unreachable!("role implies kind");
                        };
                        let name = &result.struct_perf_names[structure.index()];
                        let perf = *perf_index.entry(name.clone()).or_insert_with(|| {
                            perf_names.push(name.clone());
                            u32::try_from(perf_names.len() - 1).expect("perf count fits u32")
                        });
                        Slot::Struct { perf, min }
                    } else {
                        Slot::Min(min)
                    }
                }
            };
            slots.push(slot);
        }

        let compiled = CompiledSweep {
            config: result.config.clone(),
            terms: result.terms.clone(),
            sum_terms,
            sum_bounds,
            mins,
            slots,
            perf_names,
            arena_sets: result.arena.len(),
        };
        let st = compiled.stats();
        span.field_u64("nodes", st.nodes as u64);
        span.field_u64("sum_ops", st.sum_ops as u64);
        span.field_u64("min_ops", st.min_ops as u64);
        span.field_u64("arena_sets", st.arena_sets as u64);
        span.field_u64("terms", st.terms as u64);
        span.finish();
        compiled
    }

    /// Patches this DAG (compiled for the *previous* revision of an
    /// edited design) into the DAG of the new revision, touching only the
    /// dirty cone. See [`CompiledSweep::patch_traced`].
    pub fn patch(
        &self,
        result: &SartResult,
        nl: &Netlist,
        old_fubs: &[(&str, usize)],
        clean: &[bool],
    ) -> Result<(CompiledSweep, PatchStats), &'static str> {
        self.patch_traced(result, nl, old_fubs, clean, &Collector::disabled())
    }

    /// Incrementally re-lowers an edited design against this DAG instead
    /// of recompiling it from scratch.
    ///
    /// `self` is the DAG compiled for the previous revision; `result` is
    /// the new revision's warm-relaxed result; `old_fubs` is the previous
    /// revision's FUB layout (name and node count, in FUB-id order, as
    /// recorded by the `seqavf-fixpoint/1` artifact); `clean` marks the
    /// new FUBs whose annotations the warm solve left exactly at the
    /// seeded values ([`crate::engine::SartEngine::run_warm_patch_traced`]).
    ///
    /// Clean FUBs keep their old slots and the ops those slots reference
    /// — hash-consing means unchanged closed forms dedupe back to their
    /// old nodes; only their indices move during compaction. Dirty FUBs
    /// are re-lowered from the new result, reusing retained ops through
    /// the same content maps a cold compile builds. Ops no retained slot
    /// references are tombstoned and compacted away, so repeated patches
    /// never grow the artifact unboundedly.
    ///
    /// The patched DAG evaluates **bit-identically** to a cold
    /// [`CompiledSweep::compile`] of `result`: retained sums hold exactly
    /// the term list (in sorted new-term-id order) a cold lower would
    /// emit, MIN operand order is preserved, and dirty slots run the cold
    /// path verbatim. Any violated precondition — layout mismatch, a
    /// role or structure change inside a supposedly clean FUB, a vanished
    /// term — returns `Err`, and the caller falls back to a full
    /// recompile; a patch never degrades to a wrong DAG.
    pub fn patch_traced(
        &self,
        result: &SartResult,
        nl: &Netlist,
        old_fubs: &[(&str, usize)],
        clean: &[bool],
        obs: &Collector,
    ) -> Result<(CompiledSweep, PatchStats), &'static str> {
        let mut span = obs.span("sweep.patch");
        let out = self.patch_inner(result, nl, old_fubs, clean);
        if let Ok((_, st)) = &out {
            span.field_u64("slots_retained", st.slots_retained as u64);
            span.field_u64("slots_relowered", st.slots_relowered as u64);
            span.field_u64("ops_retained", st.ops_retained as u64);
            span.field_u64("ops_added", st.ops_added as u64);
            span.field_u64("ops_orphaned", st.ops_orphaned as u64);
            obs.count("sweep.patch.nodes_patched", st.nodes_patched() as u64);
            obs.count("sweep.patch.nodes_orphaned", st.ops_orphaned as u64);
        }
        span.finish();
        out
    }

    fn patch_inner(
        &self,
        result: &SartResult,
        nl: &Netlist,
        old_fubs: &[(&str, usize)],
        clean: &[bool],
    ) -> Result<(CompiledSweep, PatchStats), &'static str> {
        if self.config.result_key() != result.config.result_key() {
            return Err("result key mismatch between old DAG and new result");
        }
        if clean.len() != nl.fub_count() {
            return Err("clean mask does not cover the netlist's FUBs");
        }
        let old_total: usize = old_fubs.iter().map(|&(_, n)| n).sum();
        if old_total != self.slots.len() {
            return Err("old FUB layout does not cover the old DAG");
        }
        // Old FUB name -> (first slot index, node count). Node ids are
        // assigned contiguously per FUB in FUB-id order (the flattener's
        // sequential merge phase), so a FUB's slots are one dense range.
        let mut old_base: HashMap<&str, (usize, usize)> = HashMap::with_capacity(old_fubs.len());
        let mut acc = 0usize;
        for &(name, count) in old_fubs {
            if old_base.insert(name, (acc, count)).is_some() {
                return Err("duplicate FUB name in old layout");
            }
            acc += count;
        }
        // Verify the layout invariant on the revision we can see. Both
        // revisions come from the same merge phase, so a violation here
        // means relocation would be unsafe for the old one too.
        let fub_nodes = nodes_by_fub(nl);
        let mut expect = 0usize;
        for nodes in &fub_nodes {
            for n in nodes {
                if n.index() != expect {
                    return Err("netlist node ids are not FUB-contiguous");
                }
                expect += 1;
            }
        }
        if expect != nl.node_count() {
            return Err("FUB grouping does not cover the netlist");
        }

        // Term remap old -> new, by content. Identity in the common case:
        // gate edits never change the interned port terms.
        let same_terms = self.terms == result.terms;
        let tmap: Vec<Option<u32>> = if same_terms {
            Vec::new()
        } else {
            self.terms
                .iter()
                .map(|(_, k)| result.terms.get(k).map(|t| t.index() as u32))
                .collect()
        };

        // Phase 1 — mark: walk the clean FUBs' old slots to find the live
        // ops and learn each one's identity in the *new* arena (the
        // relaxed SetIds, which patch-cleanliness pins to the seed). Pure
        // array traffic: no hashing per node, which is where the patch
        // beats a recompile.
        let n_old_sums = self.sum_bounds.len() - 1;
        let mut min_pair: Vec<Option<(SetId, SetId)>> = vec![None; self.mins.len()];
        let mut sum_set: Vec<Option<SetId>> = vec![None; n_old_sums];
        let mut slots_retained = 0usize;
        for f in nl.fub_ids() {
            if !clean[f.index()] {
                continue;
            }
            let nodes = &fub_nodes[f.index()];
            let Some(&(base, count)) = old_base.get(nl.fub_name(f)) else {
                return Err("clean FUB missing from the old layout");
            };
            if count != nodes.len() {
                return Err("clean FUB changed node count");
            }
            for (k, id) in nodes.iter().enumerate() {
                let i = id.index();
                let old_slot = self.slots[base + k];
                let role = result.roles.role(*id);
                let m = match (old_slot, role) {
                    (Slot::Ctrl, NodeRole::ControlReg) | (Slot::Loop, NodeRole::LoopSeq) => {
                        continue;
                    }
                    (Slot::Min(m), r)
                        if r != NodeRole::ControlReg
                            && r != NodeRole::LoopSeq
                            && r != NodeRole::StructCell =>
                    {
                        m
                    }
                    (Slot::Struct { perf, min }, NodeRole::StructCell) => {
                        let NodeKind::StructCell { structure, .. } = nl.kind(*id) else {
                            return Err("struct role without struct kind");
                        };
                        if self.perf_names[perf as usize]
                            != result.struct_perf_names[structure.index()]
                        {
                            return Err("clean FUB changed a structure's performance name");
                        }
                        min
                    }
                    _ => return Err("clean FUB changed a node role"),
                };
                let pair = (result.fwd[i], result.bwd[i]);
                match min_pair[m as usize] {
                    None => {
                        min_pair[m as usize] = Some(pair);
                        let (a, b) = self.mins[m as usize];
                        for (s, new_set) in [(a, pair.0), (b, pair.1)] {
                            match sum_set[s as usize] {
                                None => sum_set[s as usize] = Some(new_set),
                                Some(seen) if seen == new_set => {}
                                Some(_) => return Err("old sum op maps to conflicting sets"),
                            }
                        }
                    }
                    Some(seen) if seen == pair => {}
                    Some(_) => return Err("old MIN op maps to conflicting pairs"),
                }
            }
            slots_retained += nodes.len();
        }

        // Phase 2 — compact: copy the live ops in old-index order,
        // remapping term ids when the term table changed. Dead ops are
        // simply not copied (tombstone + compact in one pass).
        let mut sum_terms: Vec<u32> = Vec::new();
        let mut sum_bounds: Vec<u32> = vec![0];
        let mut sum_index: HashMap<SetId, u32> = HashMap::new();
        let mut sum_remap: Vec<u32> = vec![u32::MAX; n_old_sums];
        for s in 0..n_old_sums {
            let Some(set) = sum_set[s] else { continue };
            let k = u32::try_from(sum_bounds.len() - 1).expect("sum op count fits u32");
            let lo = self.sum_bounds[s] as usize;
            let hi = self.sum_bounds[s + 1] as usize;
            if same_terms {
                sum_terms.extend_from_slice(&self.sum_terms[lo..hi]);
            } else {
                let start = sum_terms.len();
                for &t in &self.sum_terms[lo..hi] {
                    sum_terms.push(
                        tmap[t as usize].ok_or("live sum references a term the edit removed")?,
                    );
                }
                // Sums fold in sorted term-id order; re-sort under the
                // new ids so the fold order matches a cold compile.
                sum_terms[start..].sort_unstable();
            }
            sum_bounds.push(sum_terms.len() as u32);
            sum_remap[s] = k;
            sum_index.insert(set, k);
        }
        let retained_sums = sum_bounds.len() - 1;

        let mut mins: Vec<(u32, u32)> = Vec::new();
        let mut min_index: HashMap<(SetId, SetId), u32> = HashMap::new();
        let mut min_remap: Vec<u32> = vec![u32::MAX; self.mins.len()];
        for m in 0..self.mins.len() {
            let Some(pair) = min_pair[m] else { continue };
            let (a, b) = self.mins[m];
            mins.push((sum_remap[a as usize], sum_remap[b as usize]));
            let k = u32::try_from(mins.len() - 1).expect("min op count fits u32");
            min_remap[m] = k;
            min_index.insert(pair, k);
        }
        let retained_mins = mins.len();
        let ops_retained = retained_sums + retained_mins;
        let ops_orphaned = (n_old_sums - retained_sums) + (self.mins.len() - retained_mins);

        // Orphaned performance names are kept: they cost one map lookup
        // per evaluation and vanish on the next full compile, while
        // compacting them would force a slot rewrite of every retained
        // struct cell.
        let mut perf_names = self.perf_names.clone();
        let mut perf_index: HashMap<String, u32> = perf_names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), i as u32))
            .collect();

        // Phase 3 — lower: emit slots in node-id order. Clean FUBs
        // relocate their old slots through the compaction remaps; dirty
        // FUBs run the cold compile's per-node lowering against the new
        // result, deduping into the retained ops via the content maps.
        let lower_sum = |s: SetId,
                         sum_terms: &mut Vec<u32>,
                         sum_bounds: &mut Vec<u32>,
                         sum_index: &mut HashMap<SetId, u32>|
         -> u32 {
            *sum_index.entry(s).or_insert_with(|| {
                let k = sum_bounds.len() - 1;
                sum_terms.extend(result.arena.terms(s).iter().map(|t| t.index() as u32));
                sum_bounds.push(sum_terms.len() as u32);
                u32::try_from(k).expect("sum op count fits u32")
            })
        };
        let mut slots: Vec<Slot> = Vec::with_capacity(nl.node_count());
        let mut slots_relowered = 0usize;
        for f in nl.fub_ids() {
            let nodes = &fub_nodes[f.index()];
            if clean[f.index()] {
                let (base, _) = old_base[nl.fub_name(f)];
                for k in 0..nodes.len() {
                    slots.push(match self.slots[base + k] {
                        Slot::Min(m) => Slot::Min(min_remap[m as usize]),
                        Slot::Ctrl => Slot::Ctrl,
                        Slot::Loop => Slot::Loop,
                        Slot::Struct { perf, min } => Slot::Struct {
                            perf,
                            min: min_remap[min as usize],
                        },
                    });
                }
                continue;
            }
            for id in nodes {
                let i = id.index();
                let slot = match result.roles.role(*id) {
                    NodeRole::ControlReg => Slot::Ctrl,
                    NodeRole::LoopSeq => Slot::Loop,
                    role => {
                        let pair = (result.fwd[i], result.bwd[i]);
                        let min = match min_index.get(&pair) {
                            Some(&m) => m,
                            None => {
                                let a = lower_sum(
                                    pair.0,
                                    &mut sum_terms,
                                    &mut sum_bounds,
                                    &mut sum_index,
                                );
                                let b = lower_sum(
                                    pair.1,
                                    &mut sum_terms,
                                    &mut sum_bounds,
                                    &mut sum_index,
                                );
                                mins.push((a, b));
                                let m =
                                    u32::try_from(mins.len() - 1).expect("min op count fits u32");
                                min_index.insert(pair, m);
                                m
                            }
                        };
                        if role == NodeRole::StructCell {
                            let NodeKind::StructCell { structure, .. } = nl.kind(*id) else {
                                unreachable!("role implies kind");
                            };
                            let name = &result.struct_perf_names[structure.index()];
                            let perf = *perf_index.entry(name.clone()).or_insert_with(|| {
                                perf_names.push(name.clone());
                                u32::try_from(perf_names.len() - 1).expect("perf count fits u32")
                            });
                            Slot::Struct { perf, min }
                        } else {
                            Slot::Min(min)
                        }
                    }
                };
                slots.push(slot);
            }
            slots_relowered += nodes.len();
        }

        let ops_added = (sum_bounds.len() - 1 - retained_sums) + (mins.len() - retained_mins);
        let patched = CompiledSweep {
            config: result.config.clone(),
            terms: result.terms.clone(),
            sum_terms,
            sum_bounds,
            mins,
            slots,
            perf_names,
            arena_sets: result.arena.len(),
        };
        Ok((
            patched,
            PatchStats {
                slots_retained,
                slots_relowered,
                ops_retained,
                ops_added,
                ops_orphaned,
            },
        ))
    }

    /// The configuration captured at compile time.
    pub fn config(&self) -> &SartConfig {
        &self.config
    }

    /// Number of node slots (equals the compiled netlist's node count).
    pub fn node_count(&self) -> usize {
        self.slots.len()
    }

    /// Sharing statistics of the compiled DAG.
    pub fn stats(&self) -> CompileStats {
        CompileStats {
            nodes: self.slots.len(),
            sum_ops: self.sum_bounds.len() - 1,
            min_ops: self.mins.len(),
            arena_sets: self.arena_sets,
            terms: self.terms.len(),
        }
    }

    /// Evaluates every node's AVF for one workload's input table —
    /// bit-identical to [`SartResult::reevaluate`] on the source result.
    pub fn evaluate(&self, inputs: &PavfInputs) -> Vec<f64> {
        let mut scratch = EvalScratch::default();
        self.evaluate_with(inputs, &mut scratch)
    }

    /// [`CompiledSweep::evaluate`] with observability: one `sweep.eval`
    /// span per workload.
    pub fn evaluate_traced(&self, inputs: &PavfInputs, obs: &Collector) -> Vec<f64> {
        let mut span = obs.span("sweep.eval");
        let mut scratch = EvalScratch::default();
        let avf = self.evaluate_with(inputs, &mut scratch);
        span.field_u64("nodes", avf.len() as u64);
        span.finish();
        avf
    }

    /// Evaluates the op arrays (sums, MINs, struct overrides) for one
    /// table into `scratch`; [`CompiledSweep::slot_value`] then reads any
    /// node's AVF out of the filled scratch.
    fn eval_ops(&self, inputs: &PavfInputs, scratch: &mut EvalScratch) {
        let values = term_values(&self.terms, inputs, &self.config);
        let n_sums = self.sum_bounds.len() - 1;
        scratch.sums.clear();
        scratch.sums.reserve(n_sums);
        for k in 0..n_sums {
            let lo = self.sum_bounds[k] as usize;
            let hi = self.sum_bounds[k + 1] as usize;
            // Same accumulation order as `UnionArena::eval`: sorted term
            // ids, left fold, then the cap.
            let sum: f64 = self.sum_terms[lo..hi]
                .iter()
                .map(|&t| values[t as usize])
                .sum();
            scratch.sums.push(sum.min(1.0));
        }
        scratch.mins.clear();
        scratch.mins.reserve(self.mins.len());
        for &(a, b) in &self.mins {
            scratch
                .mins
                .push(scratch.sums[a as usize].min(scratch.sums[b as usize]));
        }
        // Struct-cell overrides: one map lookup per distinct performance
        // structure, not per cell.
        scratch.struct_avfs.clear();
        scratch
            .struct_avfs
            .extend(self.perf_names.iter().map(|p| inputs.structure_avf(p)));
    }

    /// One node's AVF from op results computed by
    /// [`CompiledSweep::eval_ops`].
    #[inline]
    fn slot_value(&self, slot: Slot, scratch: &EvalScratch) -> f64 {
        match slot {
            Slot::Min(m) => scratch.mins[m as usize],
            Slot::Ctrl => self.config.ctrl_read_pavf,
            Slot::Loop => self.config.loop_pavf,
            Slot::Struct { perf, min } => {
                scratch.struct_avfs[perf as usize].unwrap_or(scratch.mins[min as usize])
            }
        }
    }

    /// One topological pass with caller-provided scratch buffers (reused
    /// across workloads by [`CompiledSweep::evaluate_many`]).
    fn evaluate_with(&self, inputs: &PavfInputs, scratch: &mut EvalScratch) -> Vec<f64> {
        self.eval_ops(inputs, scratch);
        self.slots
            .iter()
            .map(|&slot| self.slot_value(slot, scratch))
            .collect()
    }

    /// Evaluates up to [`MAX_LANES`] tables in ONE pass over the op
    /// arrays: every sum, MIN, and slot op is decoded once and applied to
    /// all lanes, so the per-op overhead (index decode, bounds checks,
    /// slot dispatch) is amortized across the batch. Per lane the
    /// arithmetic is exactly [`CompiledSweep::evaluate`]'s — same term
    /// order, same left-fold accumulation, same cap and MIN operand
    /// order — so each appended row is bit-identical to a scalar
    /// evaluation of that table (pinned by the equivalence proptest).
    ///
    /// This is the sweep server's warm-path workhorse: at ~100k nodes it
    /// roughly halves the per-table evaluation cost versus scalar.
    fn evaluate_lanes(&self, tables: &[PavfInputs], out: &mut Vec<Vec<f64>>) {
        let k = tables.len();
        let ops = self.lane_ops(tables);
        let base = out.len();
        out.extend((0..k).map(|_| vec![0.0f64; self.slots.len()]));
        let rows = &mut out[base..];
        let mut lane_vals = [0.0f64; MAX_LANES];
        for (i, &slot) in self.slots.iter().enumerate() {
            self.lane_slot_values(slot, &ops, &mut lane_vals);
            for (l, row) in rows.iter_mut().enumerate() {
                row[i] = lane_vals[l];
            }
        }
    }

    /// The op phase of the lane evaluator: term values, sums, MINs, and
    /// struct overrides for every lane, all lane-interleaved.
    fn lane_ops(&self, tables: &[PavfInputs]) -> LaneOps {
        let k = tables.len();
        debug_assert!((2..=MAX_LANES).contains(&k));
        let n_terms = self.terms.len();
        // Term values, term-major so each op reads its lanes contiguously.
        let mut vt = vec![0.0f64; n_terms * k];
        for (lane, t) in tables.iter().enumerate() {
            let values = term_values(&self.terms, t, &self.config);
            for (ti, &v) in values.iter().enumerate() {
                vt[ti * k + lane] = v;
            }
        }
        let n_sums = self.sum_bounds.len() - 1;
        // `-0.0` seed: `Iterator::sum::<f64>()` folds from -0.0, and the
        // scalar path's empty/only-negative-zero sums therefore produce
        // -0.0. Bit identity requires the same identity element here.
        let mut sums = vec![-0.0f64; n_sums * k];
        for s in 0..n_sums {
            let lo = self.sum_bounds[s] as usize;
            let hi = self.sum_bounds[s + 1] as usize;
            let acc = &mut sums[s * k..(s + 1) * k];
            for &t in &self.sum_terms[lo..hi] {
                let tv = &vt[t as usize * k..t as usize * k + k];
                for l in 0..k {
                    acc[l] += tv[l];
                }
            }
            for v in acc {
                *v = v.min(1.0);
            }
        }
        let mut mins = vec![0.0f64; self.mins.len() * k];
        for (m, &(a, b)) in self.mins.iter().enumerate() {
            for l in 0..k {
                mins[m * k + l] = sums[a as usize * k + l].min(sums[b as usize * k + l]);
            }
        }
        // Struct-cell overrides: perf-major, lane-minor.
        let struct_avfs: Vec<Option<f64>> = self
            .perf_names
            .iter()
            .flat_map(|p| tables.iter().map(|t| t.structure_avf(p)))
            .collect();
        LaneOps {
            k,
            mins,
            struct_avfs,
        }
    }

    /// Fills `lane_vals[..ops.k]` with one slot's AVF in every lane.
    #[inline]
    fn lane_slot_values(&self, slot: Slot, ops: &LaneOps, lane_vals: &mut [f64; MAX_LANES]) {
        let k = ops.k;
        match slot {
            Slot::Min(m) => {
                lane_vals[..k].copy_from_slice(&ops.mins[m as usize * k..m as usize * k + k]);
            }
            Slot::Ctrl => lane_vals[..k].fill(self.config.ctrl_read_pavf),
            Slot::Loop => lane_vals[..k].fill(self.config.loop_pavf),
            Slot::Struct { perf, min } => {
                for (l, v) in lane_vals[..k].iter_mut().enumerate() {
                    *v = ops.struct_avfs[perf as usize * k + l]
                        .unwrap_or(ops.mins[min as usize * k + l]);
                }
            }
        }
    }

    /// Evaluates a batch of workload tables, fanned out over `threads`
    /// scoped workers. Output order matches the input order; each entry is
    /// exactly `self.evaluate(&tables[k])` bit for bit (multi-table chunks
    /// run through the lane evaluator, whose per-lane arithmetic is
    /// identical).
    pub fn evaluate_many(&self, tables: &[PavfInputs], threads: usize) -> Vec<Vec<f64>> {
        self.evaluate_many_traced(tables, threads, &Collector::disabled())
    }

    /// [`CompiledSweep::evaluate_many`] with observability: scalar
    /// evaluations record a `sweep.eval` span each, lane batches one
    /// `sweep.eval_batch` span per group (workers share the collector).
    pub fn evaluate_many_traced(
        &self,
        tables: &[PavfInputs],
        threads: usize,
        obs: &Collector,
    ) -> Vec<Vec<f64>> {
        let threads = threads.max(1).min(tables.len().max(1));
        let eval_chunk = |part: &[PavfInputs]| {
            let mut out: Vec<Vec<f64>> = Vec::with_capacity(part.len());
            let mut scratch = EvalScratch::default();
            for group in part.chunks(MAX_LANES) {
                if group.len() == 1 {
                    let mut span = obs.span("sweep.eval");
                    let avf = self.evaluate_with(&group[0], &mut scratch);
                    span.field_u64("nodes", avf.len() as u64);
                    span.finish();
                    out.push(avf);
                } else {
                    let mut span = obs.span("sweep.eval_batch");
                    self.evaluate_lanes(group, &mut out);
                    span.field_u64("tables", group.len() as u64);
                    span.field_u64("nodes", self.slots.len() as u64);
                    span.finish();
                }
            }
            out
        };
        if threads == 1 {
            return eval_chunk(tables);
        }
        let chunk = tables.len().div_ceil(threads);
        let mut out: Vec<Vec<f64>> = Vec::with_capacity(tables.len());
        std::thread::scope(|s| {
            let handles: Vec<_> = tables
                .chunks(chunk)
                .map(|part| s.spawn(|| eval_chunk(part)))
                .collect();
            for h in handles {
                out.extend(h.join().expect("sweep evaluation worker panicked"));
            }
        });
        out
    }

    /// Per-table `(sum, min, max)` folded over the slot indices in `seq`,
    /// in the given order — bit-identical to running the same left fold
    /// over [`CompiledSweep::evaluate`]'s vector, but without
    /// materializing any node-length row. This is the serve warm path's
    /// summary evaluation: at ~100k nodes it avoids writing and re-reading
    /// ~1.6 MB of per-node AVFs per table, which otherwise dominates the
    /// resident request cost.
    pub fn evaluate_seq_stats_traced(
        &self,
        tables: &[PavfInputs],
        seq: &[usize],
        threads: usize,
        obs: &Collector,
    ) -> Vec<SeqStats> {
        let threads = threads.max(1).min(tables.len().max(1));
        let eval_chunk = |part: &[PavfInputs]| {
            let mut out: Vec<SeqStats> = Vec::with_capacity(part.len());
            let mut scratch = EvalScratch::default();
            for group in part.chunks(MAX_LANES) {
                if group.len() == 1 {
                    let mut span = obs.span("sweep.eval");
                    self.eval_ops(&group[0], &mut scratch);
                    let mut st = SeqStats::IDENTITY;
                    for &i in seq {
                        st.fold(self.slot_value(self.slots[i], &scratch));
                    }
                    span.field_u64("nodes", seq.len() as u64);
                    span.finish();
                    out.push(st);
                } else {
                    let mut span = obs.span("sweep.eval_batch");
                    let k = group.len();
                    let ops = self.lane_ops(group);
                    let mut stats = [SeqStats::IDENTITY; MAX_LANES];
                    let mut lane_vals = [0.0f64; MAX_LANES];
                    for &i in seq {
                        self.lane_slot_values(self.slots[i], &ops, &mut lane_vals);
                        for (st, &v) in stats[..k].iter_mut().zip(&lane_vals[..k]) {
                            st.fold(v);
                        }
                    }
                    span.field_u64("tables", k as u64);
                    span.field_u64("nodes", seq.len() as u64);
                    span.finish();
                    out.extend_from_slice(&stats[..k]);
                }
            }
            out
        };
        if threads == 1 {
            return eval_chunk(tables);
        }
        let chunk = tables.len().div_ceil(threads);
        let mut out: Vec<SeqStats> = Vec::with_capacity(tables.len());
        std::thread::scope(|s| {
            let handles: Vec<_> = tables
                .chunks(chunk)
                .map(|part| s.spawn(|| eval_chunk(part)))
                .collect();
            for h in handles {
                out.extend(h.join().expect("sweep evaluation worker panicked"));
            }
        });
        out
    }

    // -----------------------------------------------------------------
    // Artifact serialization (the sweep cache's on-disk format)
    // -----------------------------------------------------------------

    /// Serializes the compiled DAG to the versioned `seqavf-sweep/2` text
    /// artifact. Term and performance-structure names are stored verbatim
    /// on their own lines, so any name is safe except ones containing a
    /// newline (impossible for parsed netlists).
    ///
    /// v2 embeds [`SartConfig::result_key`] instead of the full `Debug`
    /// rendering, so artifacts written at one thread count (or with
    /// incremental relaxation toggled) load under any other — those fields
    /// never change the result. v1 artifacts are rejected as unknown and
    /// degrade to a recompute.
    pub fn to_text(&self) -> String {
        let mut out = String::from("seqavf-sweep/2\n");
        out.push_str(&format!("config {}\n", self.config.result_key()));
        out.push_str(&format!("terms {}\n", self.terms.len()));
        for (_, kind) in self.terms.iter() {
            match kind {
                TermKind::Top => out.push_str("T\n"),
                TermKind::ReadPort(s) => out.push_str(&format!("R {s}\n")),
                TermKind::WritePort(s) => out.push_str(&format!("W {s}\n")),
                TermKind::Injected(s) => out.push_str(&format!("I {s}\n")),
            }
        }
        out.push_str(&format!("sums {}\n", self.sum_bounds.len() - 1));
        for k in 0..self.sum_bounds.len() - 1 {
            let lo = self.sum_bounds[k] as usize;
            let hi = self.sum_bounds[k + 1] as usize;
            let terms: Vec<String> = self.sum_terms[lo..hi].iter().map(u32::to_string).collect();
            out.push_str(&terms.join(" "));
            out.push('\n');
        }
        out.push_str(&format!("mins {}\n", self.mins.len()));
        for &(a, b) in &self.mins {
            out.push_str(&format!("{a} {b}\n"));
        }
        out.push_str(&format!("perf {}\n", self.perf_names.len()));
        for name in &self.perf_names {
            out.push_str(name);
            out.push('\n');
        }
        out.push_str(&format!("slots {}\n", self.slots.len()));
        for slot in &self.slots {
            match *slot {
                Slot::Min(m) => out.push_str(&format!("m {m}\n")),
                Slot::Ctrl => out.push_str("c\n"),
                Slot::Loop => out.push_str("l\n"),
                Slot::Struct { perf, min } => out.push_str(&format!("s {perf} {min}\n")),
            }
        }
        out.push_str(&format!("arena {}\n", self.arena_sets));
        out.push_str("end\n");
        out
    }

    /// Parses a `seqavf-sweep/2` artifact back into a compiled DAG. The
    /// caller supplies the configuration it expects (the cache key binds
    /// it); a stored artifact whose embedded *result key* differs is
    /// rejected — execution-only fields (`threads`, `incremental`) may
    /// differ freely. Every index is bounds-checked — a corrupt artifact
    /// yields `Err`, never a panic or an out-of-range evaluator.
    pub fn from_text(text: &str, config: &SartConfig) -> Result<CompiledSweep, String> {
        let mut lines = text.lines().enumerate();
        let mut next = |what: &str| -> Result<(usize, &str), String> {
            lines
                .next()
                .map(|(i, l)| (i + 1, l))
                .ok_or_else(|| format!("truncated artifact: missing {what}"))
        };
        let (_, header) = next("header")?;
        if header != "seqavf-sweep/2" {
            return Err(format!("unknown artifact header `{header}`"));
        }
        let (_, cfg_line) = next("config")?;
        let embedded = cfg_line
            .strip_prefix("config ")
            .ok_or("expected `config` line")?;
        if embedded != config.result_key() {
            return Err("artifact configuration does not match the request".to_owned());
        }
        let section_count = |line: &str, tag: &str| -> Result<usize, String> {
            line.strip_prefix(tag)
                .and_then(|r| r.strip_prefix(' '))
                .and_then(|r| r.parse().ok())
                .ok_or_else(|| format!("expected `{tag} <count>`, got `{line}`"))
        };

        let (_, l) = next("terms section")?;
        let n_terms = section_count(l, "terms")?;
        let mut terms = TermTable::new();
        for k in 0..n_terms {
            let (lineno, l) = next("term line")?;
            let kind = match (l.chars().next(), l.get(2..)) {
                (Some('T'), _) if l == "T" => TermKind::Top,
                (Some('R'), Some(name)) => TermKind::ReadPort(name.to_owned()),
                (Some('W'), Some(name)) => TermKind::WritePort(name.to_owned()),
                (Some('I'), Some(name)) => TermKind::Injected(name.to_owned()),
                _ => return Err(format!("line {lineno}: bad term `{l}`")),
            };
            let id = terms.intern(kind);
            if id.index() != k {
                return Err(format!("line {lineno}: duplicate or misordered term `{l}`"));
            }
        }

        let (_, l) = next("sums section")?;
        let n_sums = section_count(l, "sums")?;
        let mut sum_terms: Vec<u32> = Vec::new();
        let mut sum_bounds: Vec<u32> = vec![0];
        for _ in 0..n_sums {
            let (lineno, l) = next("sum line")?;
            for tok in l.split_whitespace() {
                let t: u32 = tok
                    .parse()
                    .map_err(|_| format!("line {lineno}: bad term index `{tok}`"))?;
                if t as usize >= n_terms {
                    return Err(format!("line {lineno}: term index {t} out of range"));
                }
                sum_terms.push(t);
            }
            sum_bounds.push(sum_terms.len() as u32);
        }

        let (_, l) = next("mins section")?;
        let n_mins = section_count(l, "mins")?;
        let mut mins = Vec::with_capacity(n_mins);
        for _ in 0..n_mins {
            let (lineno, l) = next("min line")?;
            let mut it = l.split_whitespace();
            let (Some(a), Some(b), None) = (it.next(), it.next(), it.next()) else {
                return Err(format!("line {lineno}: expected `<a> <b>`"));
            };
            let a: u32 = a
                .parse()
                .map_err(|_| format!("line {lineno}: bad sum index `{a}`"))?;
            let b: u32 = b
                .parse()
                .map_err(|_| format!("line {lineno}: bad sum index `{b}`"))?;
            if a as usize >= n_sums || b as usize >= n_sums {
                return Err(format!("line {lineno}: sum index out of range"));
            }
            mins.push((a, b));
        }

        let (_, l) = next("perf section")?;
        let n_perf = section_count(l, "perf")?;
        let mut perf_names = Vec::with_capacity(n_perf);
        for _ in 0..n_perf {
            let (_, l) = next("perf name")?;
            perf_names.push(l.to_owned());
        }

        let (_, l) = next("slots section")?;
        let n_slots = section_count(l, "slots")?;
        let mut slots = Vec::with_capacity(n_slots);
        for _ in 0..n_slots {
            let (lineno, l) = next("slot line")?;
            let mut it = l.split_whitespace();
            let slot = match it.next() {
                Some("c") => Slot::Ctrl,
                Some("l") => Slot::Loop,
                Some("m") => {
                    let m: u32 = it
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| format!("line {lineno}: bad min slot"))?;
                    if m as usize >= n_mins {
                        return Err(format!("line {lineno}: min index {m} out of range"));
                    }
                    Slot::Min(m)
                }
                Some("s") => {
                    let perf: u32 = it
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| format!("line {lineno}: bad struct slot"))?;
                    let min: u32 = it
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| format!("line {lineno}: bad struct slot"))?;
                    if perf as usize >= n_perf || min as usize >= n_mins {
                        return Err(format!("line {lineno}: struct slot index out of range"));
                    }
                    Slot::Struct { perf, min }
                }
                _ => return Err(format!("line {lineno}: bad slot `{l}`")),
            };
            if it.next().is_some() {
                return Err(format!("line {lineno}: trailing tokens in slot `{l}`"));
            }
            slots.push(slot);
        }

        let (lineno, l) = next("arena line")?;
        let arena_sets = section_count(l, "arena").map_err(|e| format!("line {lineno}: {e}"))?;
        let (lineno, l) = next("end line")?;
        if l != "end" {
            return Err(format!("line {lineno}: expected `end`, got `{l}`"));
        }
        Ok(CompiledSweep {
            config: config.clone(),
            terms,
            sum_terms,
            sum_bounds,
            mins,
            slots,
            perf_names,
            arena_sets,
        })
    }
}

/// Reusable evaluation buffers (one per worker thread).
#[derive(Debug, Default)]
struct EvalScratch {
    sums: Vec<f64>,
    mins: Vec<f64>,
    struct_avfs: Vec<Option<f64>>,
}

/// Lane-interleaved op results shared by the batched gather paths: entry
/// `op * k + lane` is `op`'s value for table `lane`.
struct LaneOps {
    k: usize,
    mins: Vec<f64>,
    struct_avfs: Vec<Option<f64>>,
}

/// One workload's summary fold over the sequential slots, as produced by
/// [`CompiledSweep::evaluate_seq_stats_traced`]. The fold is the sweep
/// driver's: left fold in the caller's index order, `sum` seeded with
/// `+0.0`, `min`/`max` with the infinities (so an empty index set yields
/// the identities — callers map that to their own empty-row convention).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeqStats {
    /// Running sum of sequential-node AVFs.
    pub sum: f64,
    /// Lowest sequential-node AVF (`f64::INFINITY` when empty).
    pub min: f64,
    /// Highest sequential-node AVF (`f64::NEG_INFINITY` when empty).
    pub max: f64,
}

impl SeqStats {
    /// The fold identity.
    pub const IDENTITY: SeqStats = SeqStats {
        sum: 0.0,
        min: f64::INFINITY,
        max: f64::NEG_INFINITY,
    };

    /// Folds one node's AVF in — the exact `+=`/`min`/`max` sequence the
    /// sweep driver applies to materialized rows.
    #[inline]
    pub fn fold(&mut self, v: f64) {
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SartEngine;
    use crate::mapping::StructureMapping;
    use seqavf_netlist::flatten::parse_netlist;

    const FIGURE7: &str = r"
.design fig7
.fub f
  .struct s1 1
  .struct s2 1
  .struct s3 1
  .struct s4 1
  .flop q1a s1[0]
  .flop q1b s2[0]
  .flop q2a q1a
  .gate nor g1 q2a q1b
  .flop q3b g1
  .gate nor g2 q2a g1
  .flop q3a g2
  .sw s3[0] q3a
  .sw s4[0] q3b
.endfub
.end
";

    fn fig7_inputs() -> PavfInputs {
        let mut p = PavfInputs::new();
        p.set_port("f.s1", 0.10, 0.5);
        p.set_port("f.s2", 0.02, 0.5);
        p.set_port("f.s3", 0.5, 0.9);
        p.set_port("f.s4", 0.5, 0.9);
        p
    }

    fn compiled_fig7() -> (Netlist, SartResult, CompiledSweep) {
        let nl = parse_netlist(FIGURE7).unwrap();
        let engine = SartEngine::new(&nl, &StructureMapping::new(), SartConfig::default());
        let result = engine.run(&fig7_inputs());
        let compiled = CompiledSweep::compile(&result, &nl);
        (nl, result, compiled)
    }

    #[test]
    fn unedited_patch_is_the_identity() {
        let (nl, result, compiled) = compiled_fig7();
        let layout: Vec<(&str, usize)> = vec![("f", nl.node_count())];
        let clean = vec![true; nl.fub_count()];
        let (patched, st) = compiled.patch(&result, &nl, &layout, &clean).unwrap();
        assert_eq!(st.slots_retained, nl.node_count());
        assert_eq!(st.slots_relowered, 0);
        assert_eq!(st.ops_added, 0);
        assert_eq!(st.ops_orphaned, 0);
        assert_eq!(st.nodes_patched(), 0);
        // Nothing moved, so the patched artifact is byte-identical.
        assert_eq!(patched, compiled);
        assert_eq!(patched.to_text(), compiled.to_text());
    }

    #[test]
    fn all_dirty_patch_reproduces_a_cold_compile_exactly() {
        let (nl, result, compiled) = compiled_fig7();
        let layout: Vec<(&str, usize)> = vec![("f", nl.node_count())];
        let clean = vec![false; nl.fub_count()];
        let (patched, st) = compiled.patch(&result, &nl, &layout, &clean).unwrap();
        assert_eq!(st.slots_retained, 0);
        assert_eq!(st.ops_retained, 0);
        assert_eq!(st.slots_relowered, nl.node_count());
        // Every old op is orphaned, every new op freshly lowered — and
        // fresh lowering in node order is exactly what compile does.
        assert_eq!(patched, compiled);
    }

    #[test]
    fn patched_artifact_roundtrips_through_text() {
        let (nl, result, compiled) = compiled_fig7();
        let layout: Vec<(&str, usize)> = vec![("f", nl.node_count())];
        let clean = vec![true; nl.fub_count()];
        let (patched, _) = compiled.patch(&result, &nl, &layout, &clean).unwrap();
        let text = patched.to_text();
        let back = CompiledSweep::from_text(&text, &result.config).unwrap();
        assert_eq!(back, patched);
        assert_eq!(back.to_text(), text);
    }

    #[test]
    fn patch_rejects_a_result_key_mismatch() {
        let (nl, _, compiled) = compiled_fig7();
        let other = SartConfig {
            loop_pavf: 0.45,
            ..SartConfig::default()
        };
        let engine = SartEngine::new(&nl, &StructureMapping::new(), other);
        let result = engine.run(&fig7_inputs());
        let layout: Vec<(&str, usize)> = vec![("f", nl.node_count())];
        let clean = vec![true; nl.fub_count()];
        assert!(compiled.patch(&result, &nl, &layout, &clean).is_err());
    }

    #[test]
    fn compiled_matches_interpreter_bitwise() {
        let (nl, result, compiled) = compiled_fig7();
        let mut tables = vec![fig7_inputs(), PavfInputs::new()];
        let mut varied = fig7_inputs();
        varied.set_port("f.s1", 0.31, 0.07);
        varied.set_structure_avf("f.s2", 0.42);
        tables.push(varied);
        for (k, t) in tables.iter().enumerate() {
            let fast = compiled.evaluate(t);
            let slow = result.reevaluate(&nl, t);
            assert_eq!(fast.len(), slow.len());
            for (i, (a, b)) in fast.iter().zip(&slow).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "table {k}, node {i}");
            }
        }
    }

    #[test]
    fn evaluate_many_matches_evaluate() {
        let (_, _, compiled) = compiled_fig7();
        let tables: Vec<PavfInputs> = (0..7)
            .map(|k| {
                let mut p = fig7_inputs();
                p.set_port("f.s1", 0.05 * (k + 1) as f64, 0.4);
                p
            })
            .collect();
        let batch = compiled.evaluate_many(&tables, 3);
        assert_eq!(batch.len(), tables.len());
        for (k, t) in tables.iter().enumerate() {
            assert_eq!(batch[k], compiled.evaluate(t), "workload {k}");
        }
    }

    /// The lane evaluator must be bit-identical to scalar evaluation at
    /// every chunk shape: full 16-lane groups, a multi-table remainder,
    /// and a single-table remainder (which takes the scalar path), with
    /// tables that do and don't carry struct-AVF overrides.
    #[test]
    fn lane_batches_match_scalar_bitwise_across_chunk_boundaries() {
        let (_, _, compiled) = compiled_fig7();
        for count in [2usize, MAX_LANES, MAX_LANES + 1, 2 * MAX_LANES + 3] {
            let tables: Vec<PavfInputs> = (0..count)
                .map(|k| {
                    let mut p = fig7_inputs();
                    p.set_port("f.s1", 0.01 * (k + 1) as f64, 0.4);
                    if k % 3 == 0 {
                        p.set_structure_avf("f.s3", 0.2 + 0.01 * k as f64);
                    }
                    p
                })
                .collect();
            for threads in [1usize, 2] {
                let batch = compiled.evaluate_many(&tables, threads);
                assert_eq!(batch.len(), tables.len());
                for (k, t) in tables.iter().enumerate() {
                    let scalar = compiled.evaluate(t);
                    assert_eq!(batch[k].len(), scalar.len());
                    for (i, (a, b)) in batch[k].iter().zip(&scalar).enumerate() {
                        assert_eq!(
                            a.to_bits(),
                            b.to_bits(),
                            "count {count}, threads {threads}, table {k}, node {i}"
                        );
                    }
                }
            }
        }
    }

    /// The summary fold must be bit-identical to materializing the row
    /// and folding it, at scalar and lane-batch chunk shapes alike.
    #[test]
    fn seq_stats_match_materialized_fold_bitwise() {
        let (nl, _, compiled) = compiled_fig7();
        let seq: Vec<usize> = nl.seq_nodes().map(|id| id.index()).collect();
        for count in [1usize, 2, MAX_LANES + 1] {
            let tables: Vec<PavfInputs> = (0..count)
                .map(|k| {
                    let mut p = fig7_inputs();
                    p.set_port("f.s1", 0.02 * (k + 1) as f64, 0.4);
                    p
                })
                .collect();
            let obs = Collector::disabled();
            let stats = compiled.evaluate_seq_stats_traced(&tables, &seq, 2, &obs);
            assert_eq!(stats.len(), tables.len());
            for (k, t) in tables.iter().enumerate() {
                let row = compiled.evaluate(t);
                let mut want = SeqStats::IDENTITY;
                for &i in &seq {
                    want.fold(row[i]);
                }
                assert_eq!(stats[k].sum.to_bits(), want.sum.to_bits(), "table {k}");
                assert_eq!(stats[k].min.to_bits(), want.min.to_bits(), "table {k}");
                assert_eq!(stats[k].max.to_bits(), want.max.to_bits(), "table {k}");
            }
        }
    }

    #[test]
    fn dag_is_deduplicated() {
        let (nl, result, compiled) = compiled_fig7();
        let st = compiled.stats();
        assert_eq!(st.nodes, nl.node_count());
        // The DAG only lowers live sets; the arena holds at least as many.
        assert!(st.sum_ops <= st.arena_sets, "{st:?}");
        // MIN ops are shared: never more than one per node, and strictly
        // fewer here because struct cells of one structure share pairs.
        assert!(st.min_ops <= st.nodes);
        assert_eq!(st.arena_sets, result.arena.len());
    }

    #[test]
    fn artifact_roundtrips_bitwise() {
        let (_, _, compiled) = compiled_fig7();
        let text = compiled.to_text();
        let back = CompiledSweep::from_text(&text, compiled.config()).unwrap();
        assert_eq!(back, compiled);
        let inputs = fig7_inputs();
        let a = compiled.evaluate(&inputs);
        let b = back.evaluate(&inputs);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn artifact_loads_across_execution_strategy_changes() {
        // threads/incremental are not part of the result key: an artifact
        // written under one setting parses under any other and evaluates
        // bit-identically.
        let (_, _, compiled) = compiled_fig7();
        let text = compiled.to_text();
        let exec_only = SartConfig {
            threads: 8,
            incremental: !compiled.config().incremental,
            ..compiled.config().clone()
        };
        let back = CompiledSweep::from_text(&text, &exec_only)
            .expect("execution-only config changes must not reject the artifact");
        let inputs = fig7_inputs();
        for (x, y) in compiled
            .evaluate(&inputs)
            .iter()
            .zip(&back.evaluate(&inputs))
        {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn artifact_rejects_config_mismatch_and_corruption() {
        let (_, _, compiled) = compiled_fig7();
        let text = compiled.to_text();
        let other = SartConfig {
            loop_pavf: 0.9,
            ..SartConfig::default()
        };
        assert!(CompiledSweep::from_text(&text, &other)
            .unwrap_err()
            .contains("configuration"));
        // Truncation anywhere must be an error, never a panic. (Cutting
        // only the final newline leaves the content intact — `lines()`
        // tolerates a missing trailing terminator — so stop one short.)
        for cut in 0..text.len() - 1 {
            if !text.is_char_boundary(cut) {
                continue;
            }
            assert!(
                CompiledSweep::from_text(&text[..cut], compiled.config()).is_err(),
                "cut at {cut} accepted"
            );
        }
        // An out-of-range term index inside a sum line is rejected.
        let bumped: String = text
            .lines()
            .map(|l| {
                if l == "0" {
                    "999999\n".to_owned()
                } else {
                    format!("{l}\n")
                }
            })
            .collect();
        if bumped != text {
            let err = CompiledSweep::from_text(&bumped, compiled.config()).unwrap_err();
            assert!(err.contains("out of range"), "{err}");
        }
    }
}
