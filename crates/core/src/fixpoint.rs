//! The `seqavf-fixpoint/1` artifact: a converged relaxation state
//! persisted across runs so an edited design re-solves at the cost of its
//! change cone instead of a cold flood.
//!
//! The artifact stores everything needed to re-seed [`crate::relax`]:
//! the canonical term table and [`UnionArena`] set contents, the
//! per-node forward/backward annotations grouped per FUB, the
//! [`BoundaryDeps`] CSR of the run that produced them, and one content
//! digest per FUB ([`seqavf_netlist::graph::Netlist::fub_digests`]).
//! A warm start diffs the edited netlist's FUB digests against the
//! stored ones: matching FUBs have their annotations translated into the
//! new run's arena (by term *content*, never by raw id), mismatching
//! FUBs stay at the conservative `{TOP}` default and are flagged dirty
//! so the first sweep force-walks exactly them.
//!
//! Everything about the format is defensive: decoding is bounds-checked
//! end to end (reusing [`snapshot::Cursor`]), the envelope carries the
//! snapshot family's whole-file checksum, and *any* validation failure —
//! version, checksum, config `result_key`, mapping digest, shape — is a
//! recoverable fallback to a cold solve, never an error the caller must
//! handle beyond logging a miss.

use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};

use seqavf_netlist::graph::{Netlist, NodeId};
use seqavf_netlist::snapshot::{
    open_sealed, put_section, put_u64, put_varint, seal, Cursor, SnapshotError, FIXPOINT_MAGIC,
    FIXPOINT_MAGIC_FAMILY,
};

use crate::arena::{SetId, TermId, TermKind};
use crate::engine::SartResult;
use crate::sweep::Fnv1a64;
use crate::walk::{BoundaryDeps, Propagator};

const SEC_META: u8 = 1;
const SEC_TERMS: u8 = 2;
const SEC_SETS: u8 = 3;
const SEC_FUBS: u8 = 4;
const SEC_BOUNDARY: u8 = 5;

/// One FUB's slice of the stored fixpoint: its content digest plus the
/// converged annotations of its nodes in dense-id order. Positional
/// alignment against the new netlist is safe exactly when the digest
/// matches — the digest covers node names in that same order.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredFub {
    /// Hierarchical FUB name (edit-stable identity).
    pub name: String,
    /// [`Netlist::fub_digests`] entry at capture time.
    pub digest: u64,
    /// Forward annotation per FUB-local node, as raw stored set ids.
    pub fwd: Vec<u32>,
    /// Backward annotation per FUB-local node, as raw stored set ids.
    pub bwd: Vec<u32>,
}

/// The [`BoundaryDeps`] CSR of the captured run, stored as raw indices.
/// Warm starts rebuild boundary deps from the edited netlist (they are a
/// pure function of it), so this section exists for artifact
/// introspection and shape validation, not for seeding.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StoredBoundary {
    /// Forward boundary-read node ids, ascending.
    pub fwd_reads: Vec<u32>,
    /// CSR offsets into `fwd_consumers`.
    pub fwd_offsets: Vec<u32>,
    /// Consumer FUB ids per forward read.
    pub fwd_consumers: Vec<u32>,
    /// Backward boundary-read node ids, ascending.
    pub bwd_reads: Vec<u32>,
    /// CSR offsets into `bwd_consumers`.
    pub bwd_offsets: Vec<u32>,
    /// Consumer FUB ids per backward read.
    pub bwd_consumers: Vec<u32>,
}

/// A decoded (or about-to-be-encoded) `seqavf-fixpoint/1` artifact.
///
/// Stored set ids use the arena's canonical numbering: `0` is the empty
/// set, `1` is `{TOP}` (both implicit), and id `s >= 2` indexes
/// `sets[s - 2]`, a sorted list of indices into `terms`.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredFixpoint {
    /// Design name at capture time.
    pub design: String,
    /// Whole-netlist content digest at capture time. Informational: an
    /// edited design *will* mismatch — that is the expected warm case.
    pub content_digest: u64,
    /// Digest of the structure mapping text ([`mapping_digest`]). A
    /// mismatch changes term identity, so it forces a cold solve.
    pub mapping_digest: u64,
    /// [`crate::engine::SartConfig::result_key`] of the captured run.
    pub result_key: String,
    /// Whether the captured relaxation converged. Non-converged states
    /// are never written by [`capture`], but a decoder must not trust
    /// the file.
    pub converged: bool,
    /// Total node count at capture time.
    pub node_count: usize,
    /// Term kinds in term-id order (index 0 is [`TermKind::Top`]).
    pub terms: Vec<TermKind>,
    /// Set contents for ids `2..`, each a sorted `Vec` of term indices.
    pub sets: Vec<Vec<u32>>,
    /// Per-FUB digests and annotations, in FUB-id order.
    pub fubs: Vec<StoredFub>,
    /// The captured run's boundary-dependency CSR.
    pub boundary: StoredBoundary,
}

/// What [`seed`] did: how many FUBs took stored annotations and how many
/// start dirty (edited, unknown, or untranslatable).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedPlan {
    /// FUBs that adopted stored annotations.
    pub seeded_fubs: usize,
    /// FUBs flagged for the first force-walk.
    pub dirty_fubs: usize,
}

impl StoredFixpoint {
    /// Serializes to the sealed `seqavf-fixpoint/1` wire format.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(
            64 + self.design.len()
                + self.result_key.len()
                + self.terms.len() * 16
                + self.sets.iter().map(|s| s.len() + 2).sum::<usize>()
                + self
                    .fubs
                    .iter()
                    .map(|f| f.name.len() + 16 + 4 * (f.fwd.len() + f.bwd.len()))
                    .sum::<usize>(),
        );
        out.extend_from_slice(FIXPOINT_MAGIC);

        let mut meta = Vec::new();
        put_varint(&mut meta, self.design.len() as u64);
        meta.extend_from_slice(self.design.as_bytes());
        put_u64(&mut meta, self.content_digest);
        put_u64(&mut meta, self.mapping_digest);
        put_varint(&mut meta, self.result_key.len() as u64);
        meta.extend_from_slice(self.result_key.as_bytes());
        meta.push(u8::from(self.converged));
        put_varint(&mut meta, self.node_count as u64);
        put_section(&mut out, SEC_META, &meta);

        let mut terms = Vec::new();
        put_varint(&mut terms, self.terms.len() as u64);
        for kind in &self.terms {
            let (tag, name) = match kind {
                TermKind::Top => (0u8, ""),
                TermKind::ReadPort(s) => (1, s.as_str()),
                TermKind::WritePort(s) => (2, s.as_str()),
                TermKind::Injected(s) => (3, s.as_str()),
            };
            terms.push(tag);
            put_varint(&mut terms, name.len() as u64);
            terms.extend_from_slice(name.as_bytes());
        }
        put_section(&mut out, SEC_TERMS, &terms);

        let mut sets = Vec::new();
        put_varint(&mut sets, self.sets.len() as u64);
        for set in &self.sets {
            put_varint(&mut sets, set.len() as u64);
            // Term indices are sorted ascending (arena sets are), so the
            // gaps delta-code tightly.
            let mut prev = 0u32;
            for &t in set {
                put_varint(&mut sets, u64::from(t.wrapping_sub(prev)));
                prev = t;
            }
        }
        put_section(&mut out, SEC_SETS, &sets);

        let mut fubs = Vec::new();
        put_varint(&mut fubs, self.fubs.len() as u64);
        for fub in &self.fubs {
            put_varint(&mut fubs, fub.name.len() as u64);
            fubs.extend_from_slice(fub.name.as_bytes());
            put_u64(&mut fubs, fub.digest);
            put_varint(&mut fubs, fub.fwd.len() as u64);
            for &s in fub.fwd.iter().chain(&fub.bwd) {
                put_varint(&mut fubs, u64::from(s));
            }
        }
        put_section(&mut out, SEC_FUBS, &fubs);

        let mut boundary = Vec::new();
        for arr in [
            &self.boundary.fwd_reads,
            &self.boundary.fwd_offsets,
            &self.boundary.fwd_consumers,
            &self.boundary.bwd_reads,
            &self.boundary.bwd_offsets,
            &self.boundary.bwd_consumers,
        ] {
            put_varint(&mut boundary, arr.len() as u64);
            for &v in arr.iter() {
                put_varint(&mut boundary, u64::from(v));
            }
        }
        put_section(&mut out, SEC_BOUNDARY, &boundary);

        seal(&mut out);
        out
    }

    /// Parses and validates a sealed artifact. Every failure is a
    /// recoverable [`SnapshotError`] — corrupt or truncated bytes never
    /// panic, and callers fall back to a cold solve.
    pub fn decode(bytes: &[u8]) -> Result<StoredFixpoint, SnapshotError> {
        let body = open_sealed(bytes, FIXPOINT_MAGIC, FIXPOINT_MAGIC_FAMILY)?;
        let mut top = Cursor::new(body);

        let mut meta = top.section(SEC_META)?;
        let design = read_string(&mut meta)?;
        let content_digest = meta.u64()?;
        let mapping_digest = meta.u64()?;
        let result_key = read_string(&mut meta)?;
        let converged = match meta.u8()? {
            0 => false,
            1 => true,
            _ => return Err(SnapshotError::BadIndex),
        };
        let node_count = usize::try_from(meta.varint()?).map_err(|_| SnapshotError::BadIndex)?;

        let mut tc = top.section(SEC_TERMS)?;
        let term_count = read_count(&mut tc)?;
        let mut terms = Vec::with_capacity(term_count);
        for _ in 0..term_count {
            let tag = tc.u8()?;
            let name = read_string(&mut tc)?;
            terms.push(match tag {
                0 => TermKind::Top,
                1 => TermKind::ReadPort(name),
                2 => TermKind::WritePort(name),
                3 => TermKind::Injected(name),
                _ => return Err(SnapshotError::BadIndex),
            });
        }

        let mut sc = top.section(SEC_SETS)?;
        let set_count = read_count(&mut sc)?;
        let mut sets = Vec::with_capacity(set_count);
        for _ in 0..set_count {
            let len = read_count(&mut sc)?;
            let mut set = Vec::with_capacity(len);
            let mut prev = 0u32;
            for _ in 0..len {
                let gap = u32::try_from(sc.varint()?).map_err(|_| SnapshotError::BadIndex)?;
                let t = prev.checked_add(gap).ok_or(SnapshotError::BadIndex)?;
                if t as usize >= terms.len() {
                    return Err(SnapshotError::BadIndex);
                }
                set.push(t);
                prev = t;
            }
            sets.push(set);
        }

        let mut fc = top.section(SEC_FUBS)?;
        let fub_count = read_count(&mut fc)?;
        let mut fubs = Vec::with_capacity(fub_count);
        let mut total_nodes = 0usize;
        let set_limit = sets.len() + 2;
        for _ in 0..fub_count {
            let name = read_string(&mut fc)?;
            let digest = fc.u64()?;
            let nodes = read_count(&mut fc)?;
            total_nodes = total_nodes
                .checked_add(nodes)
                .ok_or(SnapshotError::BadIndex)?;
            let read_ids = |fc: &mut Cursor<'_>| -> Result<Vec<u32>, SnapshotError> {
                let mut v = Vec::with_capacity(nodes);
                for _ in 0..nodes {
                    let s = u32::try_from(fc.varint()?).map_err(|_| SnapshotError::BadIndex)?;
                    if s as usize >= set_limit {
                        return Err(SnapshotError::BadIndex);
                    }
                    v.push(s);
                }
                Ok(v)
            };
            let fwd = read_ids(&mut fc)?;
            let bwd = read_ids(&mut fc)?;
            fubs.push(StoredFub {
                name,
                digest,
                fwd,
                bwd,
            });
        }
        if total_nodes != node_count {
            return Err(SnapshotError::BadIndex);
        }

        let mut bc = top.section(SEC_BOUNDARY)?;
        let read_arr = |bc: &mut Cursor<'_>| -> Result<Vec<u32>, SnapshotError> {
            let n = read_count(bc)?;
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push(u32::try_from(bc.varint()?).map_err(|_| SnapshotError::BadIndex)?);
            }
            Ok(v)
        };
        let boundary = StoredBoundary {
            fwd_reads: read_arr(&mut bc)?,
            fwd_offsets: read_arr(&mut bc)?,
            fwd_consumers: read_arr(&mut bc)?,
            bwd_reads: read_arr(&mut bc)?,
            bwd_offsets: read_arr(&mut bc)?,
            bwd_consumers: read_arr(&mut bc)?,
        };
        for (reads, offsets, consumers) in [
            (
                &boundary.fwd_reads,
                &boundary.fwd_offsets,
                &boundary.fwd_consumers,
            ),
            (
                &boundary.bwd_reads,
                &boundary.bwd_offsets,
                &boundary.bwd_consumers,
            ),
        ] {
            if !reads.is_empty() {
                if offsets.len() != reads.len() + 1 {
                    return Err(SnapshotError::BadIndex);
                }
                if offsets.windows(2).any(|w| w[0] > w[1])
                    || offsets.last().copied().unwrap_or(0) as usize != consumers.len()
                {
                    return Err(SnapshotError::BadIndex);
                }
                if reads.iter().any(|&n| n as usize >= node_count)
                    || consumers.iter().any(|&f| f as usize >= fubs.len())
                {
                    return Err(SnapshotError::BadIndex);
                }
            }
        }

        if !top.at_end() {
            return Err(SnapshotError::Truncated);
        }
        Ok(StoredFixpoint {
            design,
            content_digest,
            mapping_digest,
            result_key,
            converged,
            node_count,
            terms,
            sets,
            fubs,
            boundary,
        })
    }
}

/// Reads a varint count, rejecting any value that could not possibly be
/// backed by the remaining bytes (each element needs at least one byte),
/// so corrupt counts never drive huge allocations.
fn read_count(c: &mut Cursor<'_>) -> Result<usize, SnapshotError> {
    let n = usize::try_from(c.varint()?).map_err(|_| SnapshotError::BadIndex)?;
    if n > c.remaining() {
        return Err(SnapshotError::Truncated);
    }
    Ok(n)
}

fn read_string(c: &mut Cursor<'_>) -> Result<String, SnapshotError> {
    let len = read_count(c)?;
    let bytes = c.take(len)?;
    String::from_utf8(bytes.to_vec()).map_err(|_| SnapshotError::BadSymbolTable)
}

/// Digest of the structure-mapping text for `nl` — part of the artifact's
/// validity key, since the mapping decides term identity.
pub fn mapping_digest(nl: &Netlist, mapping: &crate::mapping::StructureMapping) -> u64 {
    let mut h = Fnv1a64::new();
    h.update(mapping.to_text(nl).as_bytes());
    h.finish()
}

/// Cache key of a fixpoint artifact. Deliberately built from the design
/// *name*, mapping text, and config `result_key` — not the netlist
/// content digest — so an edited design resolves to the same file and
/// finds its predecessor's fixpoint there.
pub fn artifact_key(design_name: &str, mapping_text: &str, result_key: &str) -> u64 {
    let mut h = Fnv1a64::new();
    h.update(design_name.as_bytes());
    h.update(&[0]);
    h.update(mapping_text.as_bytes());
    h.update(&[0]);
    h.update(result_key.as_bytes());
    h.finish()
}

/// The artifact path for a key inside a warm-start directory.
pub fn artifact_path(dir: &Path, key: u64) -> PathBuf {
    dir.join(format!("fixpoint-{key:016x}.bin"))
}

/// Loads and decodes an artifact. `Ok(None)` means "no artifact yet"
/// (a cold first run); `Err` is any validation failure worth reporting.
pub fn load(path: &Path) -> Result<Option<StoredFixpoint>, SnapshotError> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(_) => return Err(SnapshotError::Truncated),
    };
    StoredFixpoint::decode(&bytes).map(Some)
}

/// Atomically writes an artifact (temp file + rename, like the sweep
/// cache) so a crashed writer never leaves a torn file that a later warm
/// start would reject.
pub fn store(path: &Path, stored: &StoredFixpoint) -> io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let tmp = path.with_extension("bin.tmp");
    std::fs::write(&tmp, stored.encode())?;
    std::fs::rename(&tmp, path)
}

/// Captures the converged state of a run as a fixpoint artifact.
/// Returns `None` when the relaxation did not converge — a truncated
/// relaxation is not a fixpoint, and seeding from it would poison every
/// later warm solve.
pub fn capture(
    nl: &Netlist,
    fub_digests: &[u64],
    boundary: &BoundaryDeps,
    mapping_digest: u64,
    result: &SartResult,
) -> Option<StoredFixpoint> {
    if !result.outcome.converged {
        return None;
    }
    let terms: Vec<TermKind> = result.terms.iter().map(|(_, k)| k.clone()).collect();
    let sets: Vec<Vec<u32>> = (2..result.arena.len())
        .map(|i| {
            result
                .arena
                .terms(SetId::from_index(i))
                .iter()
                .map(|t| t.index() as u32)
                .collect()
        })
        .collect();
    let fub_nodes = nodes_by_fub(nl);
    let fubs = nl
        .fub_ids()
        .map(|f| {
            let nodes = &fub_nodes[f.index()];
            StoredFub {
                name: nl.fub_name(f).to_owned(),
                digest: fub_digests[f.index()],
                fwd: nodes
                    .iter()
                    .map(|n| result.fwd[n.index()].index() as u32)
                    .collect(),
                bwd: nodes
                    .iter()
                    .map(|n| result.bwd[n.index()].index() as u32)
                    .collect(),
            }
        })
        .collect();
    Some(StoredFixpoint {
        design: nl.design_name().to_owned(),
        content_digest: nl.content_digest(),
        mapping_digest,
        result_key: result.config.result_key(),
        converged: true,
        node_count: nl.node_count(),
        terms,
        sets,
        fubs,
        boundary: StoredBoundary {
            fwd_reads: boundary
                .fwd_reads
                .iter()
                .map(|n| n.index() as u32)
                .collect(),
            fwd_offsets: boundary.fwd_offsets.clone(),
            fwd_consumers: boundary
                .fwd_consumers
                .iter()
                .map(|f| f.index() as u32)
                .collect(),
            bwd_reads: boundary
                .bwd_reads
                .iter()
                .map(|n| n.index() as u32)
                .collect(),
            bwd_offsets: boundary.bwd_offsets.clone(),
            bwd_consumers: boundary
                .bwd_consumers
                .iter()
                .map(|f| f.index() as u32)
                .collect(),
        },
    })
}

/// Seeds a fresh propagator from a stored fixpoint.
///
/// Global guards (`Err` means "fall back to cold", with the propagator
/// untouched): the stored state must be converged and must match the
/// new run's config `result_key` and mapping digest. Per-FUB, the
/// stored annotations are adopted only when the FUB's name, digest, and
/// node count all match the edited netlist *and* every stored set
/// translates into the new term table; any shortfall leaves that FUB at
/// the conservative default and marks it dirty. The returned dirty
/// vector is exactly what [`crate::relax::relax_partitioned_warm`]
/// expects.
pub fn seed(
    stored: &StoredFixpoint,
    nl: &Netlist,
    fub_digests: &[u64],
    mapping_digest: u64,
    result_key: &str,
    prop: &mut Propagator<'_>,
) -> Result<(Vec<bool>, SeedPlan), &'static str> {
    if !stored.converged {
        return Err("stored fixpoint did not converge");
    }
    if stored.result_key != result_key {
        return Err("config result_key mismatch");
    }
    if stored.mapping_digest != mapping_digest {
        return Err("structure mapping mismatch");
    }

    // Term translation by content: stored term index -> new TermId, or
    // None when the edited design no longer interns that term (e.g. a
    // deleted structure's ports).
    let tmap: Vec<Option<TermId>> = stored
        .terms
        .iter()
        .map(|k| prop.prep.terms.get(k))
        .collect();
    // Stored set id -> new SetId, translated lazily and memoized. Ids 0
    // and 1 are pinned by the arena invariant.
    let mut smap: Vec<Option<Option<SetId>>> = vec![None; stored.sets.len() + 2];
    smap[0] = Some(Some(prop.arena.empty()));
    smap[1] = Some(Some(prop.arena.top()));
    let mut scratch: Vec<TermId> = Vec::new();
    let mut translate = |s: u32, prop: &mut Propagator<'_>| -> Option<SetId> {
        let s = s as usize;
        if let Some(cached) = smap[s] {
            return cached;
        }
        scratch.clear();
        for &t in &stored.sets[s - 2] {
            match tmap[t as usize] {
                Some(id) => scratch.push(id),
                None => {
                    smap[s] = Some(None);
                    return None;
                }
            }
        }
        let id = prop.arena.intern_terms(&scratch);
        smap[s] = Some(Some(id));
        Some(id)
    };

    let by_name: HashMap<&str, &StoredFub> =
        stored.fubs.iter().map(|f| (f.name.as_str(), f)).collect();
    let fub_nodes = nodes_by_fub(nl);
    let mut dirty = vec![true; nl.fub_count()];
    let mut seeded_fubs = 0usize;
    for f in nl.fub_ids() {
        let nodes = &fub_nodes[f.index()];
        let Some(sf) = by_name.get(nl.fub_name(f)) else {
            continue;
        };
        if sf.digest != fub_digests[f.index()]
            || sf.fwd.len() != nodes.len()
            || sf.bwd.len() != nodes.len()
        {
            continue;
        }
        // Translate into a staging buffer first: a FUB is adopted all or
        // nothing, so an untranslatable set halfway through must not
        // leave the FUB half-seeded.
        let mut staged: Vec<(usize, SetId, SetId)> = Vec::with_capacity(nodes.len());
        let mut ok = true;
        for (k, n) in nodes.iter().enumerate() {
            let (Some(fs), Some(bs)) = (translate(sf.fwd[k], prop), translate(sf.bwd[k], prop))
            else {
                ok = false;
                break;
            };
            staged.push((n.index(), fs, bs));
        }
        if !ok {
            continue;
        }
        for (i, fs, bs) in staged {
            prop.fwd[i] = fs;
            prop.bwd[i] = bs;
        }
        dirty[f.index()] = false;
        seeded_fubs += 1;
    }
    let dirty_fubs = nl.fub_count() - seeded_fubs;
    Ok((
        dirty,
        SeedPlan {
            seeded_fubs,
            dirty_fubs,
        },
    ))
}

/// Nodes grouped by owning FUB, in dense node-id order within each group.
/// Shared with the sweep-DAG patcher ([`crate::compile`]), which relies on
/// the same grouping to relocate clean FUBs' slots.
pub(crate) fn nodes_by_fub(nl: &Netlist) -> Vec<Vec<NodeId>> {
    let mut fub_nodes: Vec<Vec<NodeId>> = vec![Vec::new(); nl.fub_count()];
    for id in nl.nodes() {
        fub_nodes[nl.fub(id).index()].push(id);
    }
    fub_nodes
}

// Re-export the artifact's error type so callers need not depend on the
// netlist snapshot module directly.
pub use seqavf_netlist::snapshot::SnapshotError as FixpointError;
