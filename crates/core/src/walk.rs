//! The pAVF walks: forward from read ports, backward from write ports
//! (§4.1).
//!
//! Walks are implemented as dataflow passes over the loop-cut node graph,
//! which is acyclic: every cycle in a legal synchronous netlist passes
//! through a sequential element inside a strongly-connected component, and
//! all such elements are injected loop boundaries whose incoming edges are
//! cut (§4.3). A single topological pass therefore computes exactly the
//! fixpoint the paper's iterative walks converge to:
//!
//! - **Forward** (`F`): sources (structure cells, control registers, loop
//!   boundaries, primary inputs) carry their term; a combinational node's
//!   value is the set-union of its fan-ins (logical join, Equation 5); a
//!   sequential node copies its data input (simple pipeline, Equation 4);
//!   fan-out copies values to every branch (distribution split, Equation 6).
//! - **Backward** (`B`): sinks contribute their term (structure cells their
//!   `pAVF_W`, loop boundaries the injected value, control registers
//!   nothing — their write rate approaches zero, §5.1); a node's value is
//!   the union of its fan-outs' contributions (Equations 8–10).
//!
//! The [`Propagator`] supports both a **global** pass over the whole design
//! and **partitioned** per-FUB passes that read cross-FUB values from a
//! snapshot taken at the start of each relaxation iteration (§5.2) — the
//! partitioned mode reproduces the paper's "a walk can only cross one
//! partition per iteration" behaviour.

use seqavf_netlist::graph::{FubId, Netlist, NodeId};

use crate::arena::{SetId, TermId, TermKind, TermTable, UnionArena};
use crate::classify::{NodeRole, RoleMap};
use crate::mapping::StructureMapping;

/// Injected-term name for loop boundaries.
pub const INJ_LOOP: &str = "loop";
/// Injected-term name for control registers.
pub const INJ_CTRL: &str = "ctrl";
/// Injected-term name for the input-boundary pseudo-structure.
pub const INJ_BOUNDARY_IN: &str = "boundary_in";
/// Injected-term name for the output-boundary pseudo-structure.
pub const INJ_BOUNDARY_OUT: &str = "boundary_out";

/// Immutable preparation shared by all walks over one netlist: terms,
/// per-node source/contribution overrides, and a topological order of the
/// loop-cut graph.
#[derive(Debug, Clone)]
pub struct Prepared {
    /// Interned pAVF terms.
    pub terms: TermTable,
    /// Roles from [`crate::classify::classify`].
    pub roles: RoleMap,
    /// Fixed forward value for injected/boundary nodes.
    pub fwd_source: Vec<Option<SetId>>,
    /// Fixed backward value for sink nodes (structure cells, boundary
    /// outputs).
    pub bwd_source: Vec<Option<SetId>>,
    /// Override of the contribution a node makes to its fan-ins' backward
    /// values (`None` = the node's own backward value).
    pub bwd_contrib: Vec<Option<SetId>>,
    /// Topological order of the loop-cut graph.
    pub topo: Vec<NodeId>,
    /// `topo` filtered per FUB.
    pub fub_topo: Vec<Vec<NodeId>>,
    /// Cross-partition boundary-dependency graph for incremental
    /// relaxation.
    pub boundary: BoundaryDeps,
}

/// Which FUBs read which nodes across the partition, in each walk
/// direction — the FUB-level dependency graph the incremental relaxation
/// diffs at every iteration barrier (§5.2 only re-walks FUBs downstream
/// of a changed FUBIO value).
///
/// A node appears as a *forward* boundary read when some node of another
/// FUB takes it as a fan-in and is not itself a fixed forward source: the
/// partitioned walk then reads the node's forward annotation from the
/// iteration snapshot. Symmetrically, a node is a *backward* boundary read
/// when some node of another FUB has it as a fan-out, is not a fixed
/// backward source, and the read node's backward contribution is not
/// overridden (overridden contributions are iteration-invariant).
///
/// Both directions are stored as a CSR: `*_reads[k]` is the observed node
/// and `*_consumers[*_offsets[k]..*_offsets[k + 1]]` the deduplicated
/// FUBs whose next walk depends on it.
#[derive(Debug, Clone, Default)]
pub struct BoundaryDeps {
    /// Nodes whose forward annotation is read across a partition,
    /// ascending.
    pub fwd_reads: Vec<NodeId>,
    /// CSR offsets into [`BoundaryDeps::fwd_consumers`].
    pub fwd_offsets: Vec<u32>,
    /// Consumer FUBs per forward boundary read.
    pub fwd_consumers: Vec<FubId>,
    /// Nodes whose backward annotation is read across a partition,
    /// ascending.
    pub bwd_reads: Vec<NodeId>,
    /// CSR offsets into [`BoundaryDeps::bwd_consumers`].
    pub bwd_offsets: Vec<u32>,
    /// Consumer FUBs per backward boundary read.
    pub bwd_consumers: Vec<FubId>,
}

impl BoundaryDeps {
    /// FUBs whose forward walk reads `fwd_reads[k]` from the snapshot.
    pub fn fwd_consumers_of(&self, k: usize) -> &[FubId] {
        &self.fwd_consumers[self.fwd_offsets[k] as usize..self.fwd_offsets[k + 1] as usize]
    }

    /// FUBs whose backward walk reads `bwd_reads[k]` from the snapshot.
    pub fn bwd_consumers_of(&self, k: usize) -> &[FubId] {
        &self.bwd_consumers[self.bwd_offsets[k] as usize..self.bwd_offsets[k + 1] as usize]
    }

    fn from_pairs(fwd: Vec<(NodeId, FubId)>, bwd: Vec<(NodeId, FubId)>) -> BoundaryDeps {
        fn csr(mut pairs: Vec<(NodeId, FubId)>) -> (Vec<NodeId>, Vec<u32>, Vec<FubId>) {
            pairs.sort_unstable_by_key(|&(n, f)| (n.index(), f.index()));
            pairs.dedup();
            let mut reads = Vec::new();
            let mut offsets = vec![0u32];
            let mut consumers = Vec::with_capacity(pairs.len());
            for (n, f) in pairs {
                if reads.last() != Some(&n) {
                    reads.push(n);
                    offsets.push(consumers.len() as u32);
                }
                consumers.push(f);
                *offsets.last_mut().expect("offsets never empty") = consumers.len() as u32;
            }
            (reads, offsets, consumers)
        }
        let (fwd_reads, fwd_offsets, fwd_consumers) = csr(fwd);
        let (bwd_reads, bwd_offsets, bwd_consumers) = csr(bwd);
        BoundaryDeps {
            fwd_reads,
            fwd_offsets,
            fwd_consumers,
            bwd_reads,
            bwd_offsets,
            bwd_consumers,
        }
    }
}

/// Builds the walk preparation for a netlist.
///
/// # Panics
///
/// Panics if the loop-cut graph still contains a cycle, which indicates the
/// netlist violated the no-combinational-cycle invariant enforced by
/// [`seqavf_netlist::graph::NetlistBuilder::finish`].
pub fn prepare(
    nl: &Netlist,
    roles: RoleMap,
    mapping: &StructureMapping,
    arena: &mut UnionArena,
) -> Prepared {
    let mut terms = TermTable::with_capacity(8 + 2 * nl.structure_count());
    let loop_t = terms.intern(TermKind::Injected(INJ_LOOP.to_owned()));
    let ctrl_t = terms.intern(TermKind::Injected(INJ_CTRL.to_owned()));
    let bin_t = terms.intern(TermKind::Injected(INJ_BOUNDARY_IN.to_owned()));
    let bout_t = terms.intern(TermKind::Injected(INJ_BOUNDARY_OUT.to_owned()));

    // Per-structure read/write terms, named by the mapped performance-model
    // structure (unmapped structures use their own RTL name; the value
    // lookup then falls back to the conservative default).
    let n_structs = nl.structure_count();
    let mut read_t: Vec<TermId> = Vec::with_capacity(n_structs);
    let mut write_t: Vec<TermId> = Vec::with_capacity(n_structs);
    for sid in nl.structure_ids() {
        let name = mapping
            .perf_name(sid)
            .unwrap_or_else(|| nl.structure(sid).name())
            .to_owned();
        read_t.push(terms.intern(TermKind::ReadPort(name.clone())));
        write_t.push(terms.intern(TermKind::WritePort(name)));
    }

    let n = nl.node_count();
    let mut fwd_source: Vec<Option<SetId>> = vec![None; n];
    let mut bwd_source: Vec<Option<SetId>> = vec![None; n];
    let mut bwd_contrib: Vec<Option<SetId>> = vec![None; n];
    let loop_s = arena.singleton(loop_t);
    let ctrl_s = arena.singleton(ctrl_t);
    let bin_s = arena.singleton(bin_t);
    let bout_s = arena.singleton(bout_t);
    for id in nl.nodes() {
        let i = id.index();
        match roles.role(id) {
            NodeRole::StructCell => {
                let seqavf_netlist::graph::NodeKind::StructCell { structure, .. } = nl.kind(id)
                else {
                    unreachable!("role implies kind");
                };
                fwd_source[i] = Some(arena.singleton(read_t[structure.index()]));
                bwd_source[i] = Some(arena.singleton(write_t[structure.index()]));
                bwd_contrib[i] = Some(arena.singleton(write_t[structure.index()]));
            }
            NodeRole::ControlReg => {
                fwd_source[i] = Some(ctrl_s);
                // "Since writes to these control registers are relatively
                // rare, the pAVF_W will approach 0%. As a result, we can
                // omit walks up from these write-ports." (§5.1)
                bwd_source[i] = Some(ctrl_s);
                bwd_contrib[i] = Some(arena.empty());
            }
            NodeRole::LoopSeq => {
                // Loop nodes behave as structures: walks start and stop
                // here with the injected loop-boundary pAVF (§4.3).
                fwd_source[i] = Some(loop_s);
                bwd_source[i] = Some(loop_s);
                bwd_contrib[i] = Some(loop_s);
            }
            NodeRole::BoundaryIn => {
                fwd_source[i] = Some(bin_s);
            }
            NodeRole::BoundaryOut => {
                bwd_source[i] = Some(bout_s);
            }
            NodeRole::Normal => {}
        }
    }

    // Kahn topological sort over the loop-cut graph: fan-in edges of
    // injected nodes are ignored (walks never propagate into a source).
    let cut = |id: NodeId| fwd_source[id.index()].is_some() && roles.role(id).is_injected();
    let mut indeg = vec![0u32; n];
    for id in nl.nodes() {
        if cut(id) {
            continue;
        }
        indeg[id.index()] = nl.fanin(id).len() as u32;
    }
    let mut queue: Vec<NodeId> = nl.nodes().filter(|&id| indeg[id.index()] == 0).collect();
    let mut topo: Vec<NodeId> = Vec::with_capacity(n);
    let mut head = 0;
    while head < queue.len() {
        let u = queue[head];
        head += 1;
        topo.push(u);
        for &v in nl.fanout(u) {
            if cut(v) {
                continue;
            }
            indeg[v.index()] -= 1;
            if indeg[v.index()] == 0 {
                queue.push(v);
            }
        }
    }
    assert_eq!(
        topo.len(),
        n,
        "loop-cut graph must be acyclic; an uncut cycle remains"
    );

    let mut fub_topo: Vec<Vec<NodeId>> = vec![Vec::new(); nl.fub_count()];
    for &id in &topo {
        fub_topo[nl.fub(id).index()].push(id);
    }

    // Boundary-dependency graph: exactly the cross-partition snapshot
    // reads the partitioned walks perform. Forward: a non-source node
    // reads every foreign fan-in. Backward: a non-source node reads every
    // foreign fan-out whose contribution is not overridden.
    let mut fwd_pairs: Vec<(NodeId, FubId)> = Vec::new();
    let mut bwd_pairs: Vec<(NodeId, FubId)> = Vec::new();
    for id in nl.nodes() {
        let fub = nl.fub(id);
        if fwd_source[id.index()].is_none() {
            for &f in nl.fanin(id) {
                if nl.fub(f) != fub {
                    fwd_pairs.push((f, fub));
                }
            }
        }
        if bwd_source[id.index()].is_none() {
            for &m in nl.fanout(id) {
                if bwd_contrib[m.index()].is_none() && nl.fub(m) != fub {
                    bwd_pairs.push((m, fub));
                }
            }
        }
    }
    let boundary = BoundaryDeps::from_pairs(fwd_pairs, bwd_pairs);

    Prepared {
        terms,
        roles,
        fwd_source,
        bwd_source,
        bwd_contrib,
        topo,
        fub_topo,
        boundary,
    }
}

/// Mutable propagation state: the arena plus per-node forward/backward
/// annotations.
#[derive(Debug, Clone)]
pub struct Propagator<'nl> {
    /// The netlist being analyzed.
    pub nl: &'nl Netlist,
    /// Walk preparation.
    pub prep: Prepared,
    /// Union arena (grows as new sets are formed).
    pub arena: UnionArena,
    /// Per-node forward annotation; starts at the conservative `{TOP}`.
    pub fwd: Vec<SetId>,
    /// Per-node backward annotation; starts at the conservative `{TOP}`.
    pub bwd: Vec<SetId>,
}

impl<'nl> Propagator<'nl> {
    /// Creates a propagator with all nodes at the conservative initial
    /// annotation (Equation 7: "all nodes conservatively start with a pAVF
    /// of 1.0").
    pub fn new(nl: &'nl Netlist, prep: Prepared, arena: UnionArena) -> Self {
        let top = arena.top();
        let n = nl.node_count();
        Propagator {
            nl,
            prep,
            arena,
            fwd: vec![top; n],
            bwd: vec![top; n],
        }
    }

    /// One forward pass over a FUB (or the whole design when `fub` is
    /// `None`). Cross-partition fan-ins read from `snapshot` when provided.
    ///
    /// The global and partitioned variants are separate loops so the
    /// partition membership test is hoisted out of the per-edge hot path —
    /// the global walk never pays it at all.
    pub fn forward_pass(&mut self, fub: Option<FubId>, snapshot: Option<&[SetId]>) {
        match fub {
            None => {
                for k in 0..self.prep.topo.len() {
                    let n = self.prep.topo[k];
                    let i = n.index();
                    if let Some(s) = self.prep.fwd_source[i] {
                        self.fwd[i] = s;
                        continue;
                    }
                    // A non-source node with no fan-in (e.g. a constant
                    // gate) has no measured provenance. The empty set would
                    // evaluate to 0.0 — optimistically un-ACE — so resolve
                    // it conservatively to TOP; only injected sources and
                    // boundary inputs may carry a non-conservative fixed
                    // value.
                    if self.nl.fanin(n).is_empty() {
                        self.fwd[i] = self.arena.top();
                        continue;
                    }
                    let mut acc = self.arena.empty();
                    for &f in self.nl.fanin(n) {
                        acc = self.arena.union2(acc, self.fwd[f.index()]);
                    }
                    self.fwd[i] = acc;
                }
            }
            Some(fub) => {
                for k in 0..self.prep.fub_topo[fub.index()].len() {
                    let n = self.prep.fub_topo[fub.index()][k];
                    let i = n.index();
                    if let Some(s) = self.prep.fwd_source[i] {
                        self.fwd[i] = s;
                        continue;
                    }
                    if self.nl.fanin(n).is_empty() {
                        self.fwd[i] = self.arena.top();
                        continue;
                    }
                    let mut acc = self.arena.empty();
                    for &f in self.nl.fanin(n) {
                        let v = if self.nl.fub(f) == fub {
                            self.fwd[f.index()]
                        } else {
                            snapshot.map_or(self.arena.top(), |s| s[f.index()])
                        };
                        acc = self.arena.union2(acc, v);
                    }
                    self.fwd[i] = acc;
                }
            }
        }
    }

    /// One backward pass over a FUB (or the whole design when `fub` is
    /// `None`). Split into global/partitioned loops for the same
    /// hoisted-partition-check reason as [`Propagator::forward_pass`].
    pub fn backward_pass(&mut self, fub: Option<FubId>, snapshot: Option<&[SetId]>) {
        match fub {
            None => {
                for k in (0..self.prep.topo.len()).rev() {
                    let n = self.prep.topo[k];
                    let i = n.index();
                    if let Some(s) = self.prep.bwd_source[i] {
                        self.bwd[i] = s;
                        continue;
                    }
                    let mut acc = self.arena.empty();
                    for &m in self.nl.fanout(n) {
                        let v = self.prep.bwd_contrib[m.index()].unwrap_or(self.bwd[m.index()]);
                        acc = self.arena.union2(acc, v);
                    }
                    self.bwd[i] = acc;
                }
            }
            Some(fub) => {
                for k in (0..self.prep.fub_topo[fub.index()].len()).rev() {
                    let n = self.prep.fub_topo[fub.index()][k];
                    let i = n.index();
                    if let Some(s) = self.prep.bwd_source[i] {
                        self.bwd[i] = s;
                        continue;
                    }
                    let mut acc = self.arena.empty();
                    for &m in self.nl.fanout(n) {
                        let v = if let Some(c) = self.prep.bwd_contrib[m.index()] {
                            c
                        } else if self.nl.fub(m) == fub {
                            self.bwd[m.index()]
                        } else {
                            snapshot.map_or(self.arena.top(), |s| s[m.index()])
                        };
                        acc = self.arena.union2(acc, v);
                    }
                    self.bwd[i] = acc;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::classify;
    use crate::mapping::StructureMapping;
    use seqavf_netlist::flatten::parse_netlist;
    use seqavf_netlist::scc::find_loops;

    fn build(text: &str, patterns: &[&str]) -> (Netlist, Propagator<'static>) {
        let nl = Box::leak(Box::new(parse_netlist(text).unwrap()));
        let loops = find_loops(nl);
        let pats: Vec<String> = patterns.iter().map(|s| (*s).to_owned()).collect();
        let roles = classify(nl, &loops, &pats);
        let mut arena = UnionArena::new();
        let prep = prepare(nl, roles, &StructureMapping::new(), &mut arena);
        let prop = Propagator::new(nl, prep, arena);
        (nl.clone(), prop)
    }

    const PIPE: &str = r"
.design p
.fub f
  .struct s1 1
  .struct s2 1
  .flop q1 s1[0]
  .flop q2 q1
  .flop q3 q2
  .sw s2[0] q3
.endfub
.end
";

    #[test]
    fn simple_pipeline_forward_copies_read_term() {
        let (nl, mut p) = build(PIPE, &[]);
        p.forward_pass(None, None);
        let s1 = nl.lookup("f.s1[0]").unwrap();
        for q in ["f.q1", "f.q2", "f.q3"] {
            let id = nl.lookup(q).unwrap();
            assert_eq!(p.fwd[id.index()], p.fwd[s1.index()], "{q}");
        }
    }

    #[test]
    fn simple_pipeline_backward_copies_write_term() {
        let (nl, mut p) = build(PIPE, &[]);
        p.backward_pass(None, None);
        let s2 = nl.lookup("f.s2[0]").unwrap();
        for q in ["f.q1", "f.q2", "f.q3"] {
            let id = nl.lookup(q).unwrap();
            assert_eq!(p.bwd[id.index()], p.bwd[s2.index()], "{q}");
        }
    }

    const JOIN: &str = r"
.design j
.fub f
  .struct s1 1
  .struct s2 1
  .struct s3 1
  .flop q1a s1[0]
  .flop q1b s2[0]
  .gate nor g1 q1a q1b
  .flop q2a g1
  .sw s3[0] q2a
.endfub
.end
";

    #[test]
    fn join_unions_input_terms() {
        let (nl, mut p) = build(JOIN, &[]);
        p.forward_pass(None, None);
        let q2a = nl.lookup("f.q2a").unwrap();
        let set = p.fwd[q2a.index()];
        assert_eq!(p.arena.terms(set).len(), 2, "union of two read terms");
        // Backward: both join inputs inherit the output value (Eq. 9).
        p.backward_pass(None, None);
        let q1a = nl.lookup("f.q1a").unwrap();
        let q1b = nl.lookup("f.q1b").unwrap();
        assert_eq!(p.bwd[q1a.index()], p.bwd[q1b.index()]);
        assert_eq!(p.arena.terms(p.bwd[q1a.index()]).len(), 1);
    }

    const SPLIT: &str = r"
.design sp
.fub f
  .struct s1 1
  .struct s2 1
  .struct s3 1
  .flop q1a s1[0]
  .flop q2a q1a
  .flop q2b q1a
  .sw s2[0] q2a
  .sw s3[0] q2b
.endfub
.end
";

    #[test]
    fn split_copies_forward_and_unions_backward() {
        let (nl, mut p) = build(SPLIT, &[]);
        p.forward_pass(None, None);
        let q1a = nl.lookup("f.q1a").unwrap();
        let q2a = nl.lookup("f.q2a").unwrap();
        let q2b = nl.lookup("f.q2b").unwrap();
        assert_eq!(p.fwd[q2a.index()], p.fwd[q1a.index()]);
        assert_eq!(p.fwd[q2b.index()], p.fwd[q1a.index()]);
        p.backward_pass(None, None);
        // Q1a's backward value is the union of the two write terms (Eq. 10).
        assert_eq!(p.arena.terms(p.bwd[q1a.index()]).len(), 2);
    }

    #[test]
    fn loop_nodes_are_sources_in_both_directions() {
        let text = r"
.design l
.fub f
  .struct s1 1
  .flop a b
  .flop b a
  .flop q s1[0]
  .gate and g q a
  .flop out g
  .sw s1[0] out
.endfub
.end
";
        let (nl, mut p) = build(text, &[]);
        p.forward_pass(None, None);
        p.backward_pass(None, None);
        let a = nl.lookup("f.a").unwrap();
        let g = nl.lookup("f.out").unwrap();
        // a's forward value is the injected loop term.
        let terms: Vec<_> = p
            .arena
            .terms(p.fwd[a.index()])
            .iter()
            .map(|&t| p.prep.terms.kind(t).clone())
            .collect();
        assert_eq!(terms, vec![TermKind::Injected(INJ_LOOP.to_owned())]);
        // The loop term ripples into downstream logic ("the AVF used for
        // loops could … propagate into sequentials fed by … the loop").
        assert!(p
            .arena
            .terms(p.fwd[g.index()])
            .iter()
            .any(|&t| *p.prep.terms.kind(t) == TermKind::Injected(INJ_LOOP.to_owned())));
    }

    #[test]
    fn control_reg_contributes_nothing_backward() {
        let text = r"
.design c
.fub f
  .input cfg
  .struct s1 1
  .flop creg_x cfg cfg
  .flop q s1[0]
  .sw s1[0] q
  .flop feeder q
  .gate and g feeder creg_x
  .flop dead g
.endfub
.end
";
        let (nl, mut p) = build(text, &["creg"]);
        p.forward_pass(None, None);
        p.backward_pass(None, None);
        let creg = nl.lookup("f.creg_x").unwrap();
        // Forward: the control-reg term.
        assert_eq!(
            p.prep.terms.kind(p.arena.terms(p.fwd[creg.index()])[0]),
            &TermKind::Injected(INJ_CTRL.to_owned())
        );
        // `dead` has no consumers at all -> backward empty -> resolves to 0.
        let dead = nl.lookup("f.dead").unwrap();
        assert_eq!(p.bwd[dead.index()], p.arena.empty());
    }

    #[test]
    fn zero_fanin_normal_node_resolves_to_top() {
        use seqavf_netlist::graph::{GateOp, NetlistBuilder, NodeKind, SeqKind};
        let mut b = NetlistBuilder::new("z");
        let f = b.add_fub("f");
        let s1 = b.add_structure("f.s1", 1, f);
        let cell = b.structure_cell(s1, 0);
        let c = b.add_node("f.c", NodeKind::Comb(GateOp::Const1), f);
        let g = b.add_node("f.g", NodeKind::Comb(GateOp::And), f);
        let q = b.add_node(
            "f.q",
            NodeKind::Seq {
                kind: SeqKind::Flop,
                has_enable: false,
            },
            f,
        );
        let o = b.add_node("f.o", NodeKind::Output, f);
        b.connect(cell, g);
        b.connect(c, g);
        b.connect(g, q);
        b.connect(q, o);
        let nl = Box::leak(Box::new(b.finish().unwrap()));
        let loops = find_loops(nl);
        let roles = classify(nl, &loops, &[]);
        assert_eq!(roles.role(c), crate::classify::NodeRole::Normal);
        let mut arena = UnionArena::new();
        let prep = prepare(nl, roles, &StructureMapping::new(), &mut arena);
        let mut p = Propagator::new(nl, prep, arena);
        p.forward_pass(None, None);
        // The constant gate has no fan-in and no injected source: its
        // forward value must be the conservative TOP, not the optimistic
        // empty set (which evaluates to 0.0).
        assert_eq!(p.fwd[c.index()], p.arena.top());
        // TOP absorbs through the downstream join.
        assert_eq!(p.fwd[g.index()], p.arena.top());
        assert_eq!(p.fwd[q.index()], p.arena.top());
    }

    #[test]
    fn boundary_deps_record_cross_fub_reads() {
        let text = r"
.design x
.fub a
  .struct s1 1
  .flop q s1[0]
  .output o q
.endfub
.fub b
  .struct s2 1
  .flop r a.o
  .sw s2[0] r
.endfub
.end
";
        let (nl, p) = build(text, &[]);
        let deps = &p.prep.boundary;
        let a_o = nl.lookup("a.o").unwrap();
        let b_r = nl.lookup("b.r").unwrap();
        let fub_a = nl.fub(a_o);
        let fub_b = nl.fub(b_r);
        // Forward: b reads a.o's annotation from the snapshot.
        let k = deps
            .fwd_reads
            .iter()
            .position(|&n| n == a_o)
            .expect("a.o is a forward boundary read");
        assert_eq!(deps.fwd_consumers_of(k), &[fub_b]);
        // Backward: a reads b.r's annotation from the snapshot.
        let k = deps
            .bwd_reads
            .iter()
            .position(|&n| n == b_r)
            .expect("b.r is a backward boundary read");
        assert_eq!(deps.bwd_consumers_of(k), &[fub_a]);
        // Every recorded read really crosses the partition, and no
        // consumer list names the read node's own FUB.
        for (k, &n) in deps.fwd_reads.iter().enumerate() {
            assert!(!deps.fwd_consumers_of(k).is_empty());
            assert!(!deps.fwd_consumers_of(k).contains(&nl.fub(n)));
        }
        for (k, &n) in deps.bwd_reads.iter().enumerate() {
            assert!(!deps.bwd_consumers_of(k).is_empty());
            assert!(!deps.bwd_consumers_of(k).contains(&nl.fub(n)));
        }
    }

    #[test]
    fn partitioned_pass_reads_snapshot_for_cross_fub_edges() {
        let text = r"
.design x
.fub a
  .struct s1 1
  .flop q s1[0]
  .output o q
.endfub
.fub b
  .flop r a.o
  .output o2 r
.endfub
.end
";
        let (nl, mut p) = build(text, &[]);
        let fub_a = seqavf_netlist::graph::FubId::from_index(0);
        let fub_b = seqavf_netlist::graph::FubId::from_index(1);
        // Iteration 1: snapshot is all-TOP, so b.r sees TOP.
        let snap = p.fwd.clone();
        p.forward_pass(Some(fub_a), Some(&snap));
        p.forward_pass(Some(fub_b), Some(&snap));
        let r = nl.lookup("b.r").unwrap();
        assert_eq!(p.fwd[r.index()], p.arena.top());
        // Iteration 2: the snapshot now carries a.o's real value.
        let snap = p.fwd.clone();
        p.forward_pass(Some(fub_a), Some(&snap));
        p.forward_pass(Some(fub_b), Some(&snap));
        let o = nl.lookup("a.o").unwrap();
        assert_eq!(p.fwd[r.index()], p.fwd[o.index()]);
        assert_ne!(p.fwd[r.index()], p.arena.top());
    }
}
