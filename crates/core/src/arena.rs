//! The symbolic pAVF expression engine.
//!
//! §5.2: "Another optimization … involved propagating the pAVF values
//! *symbolically* through the RTL node graph. … a closed form equation is
//! generated for each visited node … with the terms of the equations being
//! the structure pAVFs of the ACE model plus any injected state (such as
//! from control registers or loop boundaries)."
//!
//! The paper's propagation rules use only *set union* over pAVF terms
//! (evaluated as a capped sum under the no-overlap assumption) and a final
//! `MIN` of the forward and backward estimates. The closed form for a node
//! is therefore `MIN(Σ forward-terms, Σ backward-terms)` where each side is
//! a **set** of distinct terms — the set semantics give the paper's
//! `pAVF₁ ∪ (pAVF₁ ∪ pAVF₂) = pAVF₁ ∪ pAVF₂` simplification for free.
//!
//! Term sets are hash-consed in a [`UnionArena`]: every distinct set is
//! stored once and identified by a compact [`SetId`], so annotating
//! millions of nodes costs one `u32` per direction per node, and
//! re-evaluating the whole design for a new workload's pAVF vector is a
//! single pass over the arena (§5.2: "any subsequent sequential AVF
//! computations … simply plug new pAVFs into the closed form equations").

use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a pAVF term (a source of injected probability).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TermId(u32);

impl TermId {
    /// Raw dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// What a term denotes.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TermKind {
    /// `pAVF_R` of a performance-model structure (by name).
    ReadPort(String),
    /// `pAVF_W` of a performance-model structure (by name).
    WritePort(String),
    /// Injected state: loop boundaries, control registers, RTL-boundary
    /// pseudo-structures (§4.3, §5.1). The name selects the injected value.
    Injected(String),
    /// The saturated conservative term — always evaluates to 1.0. Sets
    /// containing it collapse to `{TOP}`.
    Top,
}

impl fmt::Display for TermKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TermKind::ReadPort(s) => write!(f, "pAVF_R({s})"),
            TermKind::WritePort(s) => write!(f, "pAVF_W({s})"),
            TermKind::Injected(s) => write!(f, "inj({s})"),
            TermKind::Top => write!(f, "TOP"),
        }
    }
}

/// Interning table for terms.
///
/// Each [`TermKind`] (and therefore each structure-name `String`) is stored
/// exactly once, in `terms`; the lookup index maps a 64-bit content hash to
/// the bucket of term ids sharing it, so interning never clones the kind.
#[derive(Debug, Clone, Default)]
pub struct TermTable {
    terms: Vec<TermKind>,
    index: HashMap<u64, Vec<TermId>>,
}

/// Equality is determined by the interned terms alone: the hash index is a
/// deterministic function of them.
impl PartialEq for TermTable {
    fn eq(&self, other: &Self) -> bool {
        self.terms == other.terms
    }
}

fn term_hash(kind: &TermKind) -> u64 {
    let mut h = crate::sweep::Fnv1a64::new();
    match kind {
        TermKind::ReadPort(s) => {
            h.update(&[0]);
            h.update(s.as_bytes());
        }
        TermKind::WritePort(s) => {
            h.update(&[1]);
            h.update(s.as_bytes());
        }
        TermKind::Injected(s) => {
            h.update(&[2]);
            h.update(s.as_bytes());
        }
        TermKind::Top => h.update(&[3]),
    }
    h.finish()
}

impl TermTable {
    /// Creates an empty table with the [`TermKind::Top`] term pre-interned
    /// as term 0.
    pub fn new() -> Self {
        let mut t = TermTable::default();
        let top = t.intern(TermKind::Top);
        debug_assert_eq!(top.index(), 0);
        t
    }

    /// [`TermTable::new`] with storage reserved for `terms` entries, so a
    /// caller that knows the design's structure count (2 port terms per
    /// structure plus a few injected ones) interns without rehashing.
    pub fn with_capacity(terms: usize) -> Self {
        let mut t = TermTable {
            terms: Vec::with_capacity(terms.max(1)),
            index: HashMap::with_capacity(terms.max(1)),
        };
        let top = t.intern(TermKind::Top);
        debug_assert_eq!(top.index(), 0);
        t
    }

    /// The saturated term.
    pub fn top(&self) -> TermId {
        TermId(0)
    }

    /// Interns a term, returning its id. The kind is moved into the table;
    /// a hit compares against the single stored copy instead of cloning.
    pub fn intern(&mut self, kind: TermKind) -> TermId {
        let bucket = self.index.entry(term_hash(&kind)).or_default();
        for &id in bucket.iter() {
            if self.terms[id.index()] == kind {
                return id;
            }
        }
        let id = TermId(u32::try_from(self.terms.len()).expect("term count fits u32"));
        bucket.push(id);
        self.terms.push(kind);
        id
    }

    /// Looks up a term without interning.
    pub fn get(&self, kind: &TermKind) -> Option<TermId> {
        let bucket = self.index.get(&term_hash(kind))?;
        bucket
            .iter()
            .copied()
            .find(|id| &self.terms[id.index()] == kind)
    }

    /// The kind of a term.
    pub fn kind(&self, id: TermId) -> &TermKind {
        &self.terms[id.index()]
    }

    /// Number of interned terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Whether only the TOP term exists.
    pub fn is_empty(&self) -> bool {
        self.terms.len() <= 1
    }

    /// Iterates over `(id, kind)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (TermId, &TermKind)> {
        self.terms
            .iter()
            .enumerate()
            .map(|(i, k)| (TermId(i as u32), k))
    }

    /// Builds a value vector for evaluation: read/write ports are looked up
    /// in `port_avfs` (falling back to `default_port` when missing),
    /// injected terms in `injected` (falling back to `default_injected`),
    /// and TOP is pinned to 1.0.
    pub fn values(
        &self,
        port_avfs: &dyn Fn(&str) -> Option<(f64, f64)>,
        injected: &dyn Fn(&str) -> Option<f64>,
        default_port: f64,
        default_injected: f64,
    ) -> Vec<f64> {
        self.terms
            .iter()
            .map(|k| match k {
                TermKind::Top => 1.0,
                TermKind::ReadPort(s) => port_avfs(s).map_or(default_port, |(r, _)| r),
                TermKind::WritePort(s) => port_avfs(s).map_or(default_port, |(_, w)| w),
                TermKind::Injected(s) => injected(s).unwrap_or(default_injected),
            })
            .map(|v| v.clamp(0.0, 1.0))
            .collect()
    }
}

/// Identifier of an interned term set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SetId(u32);

impl SetId {
    /// Raw dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Inverse of [`SetId::index`], for code that walks an arena's sets
    /// positionally (e.g. the fixpoint snapshot encoder).
    pub fn from_index(i: usize) -> SetId {
        SetId(u32::try_from(i).expect("set index fits u32"))
    }
}

/// Hash-consing arena for term sets (symbolic unions).
#[derive(Debug, Clone)]
pub struct UnionArena {
    sets: Vec<Box<[TermId]>>,
    index: HashMap<Box<[TermId]>, SetId>,
    /// Memo for [`UnionArena::union2`] results past the trivial fast
    /// paths, keyed by the unordered operand pair (stored min-first).
    /// Interned ids never change, so entries stay valid for the arena's
    /// whole lifetime.
    union_memo: HashMap<(SetId, SetId), SetId>,
}

impl UnionArena {
    /// Creates an arena with the empty set at id 0 and `{TOP}` at id 1.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// [`UnionArena::new`] with storage reserved for roughly `sets`
    /// distinct interned sets. Relaxation interns a set per direction per
    /// visited node in the worst case, so sizing from the node count up
    /// front avoids the doubling-rehash churn that dominates arena cost
    /// on 100k+-node designs.
    pub fn with_capacity(sets: usize) -> Self {
        let mut a = UnionArena {
            sets: Vec::with_capacity(sets + 2),
            index: HashMap::with_capacity(sets + 2),
            union_memo: HashMap::with_capacity(sets / 2),
        };
        let empty = a.intern(Vec::new());
        debug_assert_eq!(empty.index(), 0);
        let top = a.intern(vec![TermId(0)]);
        debug_assert_eq!(top.index(), 1);
        a
    }

    /// The empty set (evaluates to 0: no ACE data).
    pub fn empty(&self) -> SetId {
        SetId(0)
    }

    /// The saturated set `{TOP}` (evaluates to 1: the conservative initial
    /// annotation of Equation 7).
    pub fn top(&self) -> SetId {
        SetId(1)
    }

    fn intern(&mut self, mut terms: Vec<TermId>) -> SetId {
        terms.sort_unstable();
        terms.dedup();
        // TOP absorbs everything: {TOP, x, …} ≡ {TOP} since TOP is pinned
        // to 1.0 and the union evaluation caps at 1.0.
        if terms.len() > 1 && terms[0] == TermId(0) {
            terms = vec![TermId(0)];
        }
        let boxed: Box<[TermId]> = terms.into_boxed_slice();
        if let Some(&id) = self.index.get(&boxed) {
            return id;
        }
        let id = SetId(u32::try_from(self.sets.len()).expect("set count fits u32"));
        self.sets.push(boxed.clone());
        self.index.insert(boxed, id);
        id
    }

    /// A one-term set.
    pub fn singleton(&mut self, t: TermId) -> SetId {
        self.intern(vec![t])
    }

    /// Interns an explicit term list, normalizing it like any union
    /// (sorted, deduplicated, TOP-absorbed). This is the canonicalization
    /// hook of the sharded parallel relaxation: worker shards hand their
    /// final per-node term lists to the shared arena at the iteration
    /// barrier, and because normalization depends only on the term
    /// *content*, the resulting [`SetId`] is independent of which shard
    /// produced the list.
    pub fn intern_terms(&mut self, terms: &[TermId]) -> SetId {
        self.intern(terms.to_vec())
    }

    /// Set union of two sets.
    pub fn union2(&mut self, a: SetId, b: SetId) -> SetId {
        if a == b {
            return a;
        }
        if a == self.empty() {
            return b;
        }
        if b == self.empty() {
            return a;
        }
        if a == self.top() || b == self.top() {
            return self.top();
        }
        let key = if a < b { (a, b) } else { (b, a) };
        if let Some(&s) = self.union_memo.get(&key) {
            return s;
        }
        let mut v: Vec<TermId> = self.sets[a.index()].to_vec();
        v.extend_from_slice(&self.sets[b.index()]);
        let s = self.intern(v);
        self.union_memo.insert(key, s);
        s
    }

    /// Set union of many sets.
    pub fn union_many<I: IntoIterator<Item = SetId>>(&mut self, sets: I) -> SetId {
        let mut acc = self.empty();
        for s in sets {
            acc = self.union2(acc, s);
        }
        acc
    }

    /// The terms of a set, sorted.
    pub fn terms(&self, s: SetId) -> &[TermId] {
        &self.sets[s.index()]
    }

    /// Number of distinct sets interned.
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// Whether only the empty and TOP sets exist.
    pub fn is_empty(&self) -> bool {
        self.sets.len() <= 2
    }

    /// Evaluates one set against a term-value vector: capped sum over
    /// distinct terms (the no-overlap union of Equations 5 and 10).
    pub fn eval(&self, s: SetId, values: &[f64]) -> f64 {
        let sum: f64 = self.sets[s.index()].iter().map(|t| values[t.index()]).sum();
        sum.min(1.0)
    }

    /// Evaluates every interned set at once; index the result by
    /// [`SetId::index`]. This is the fast re-evaluation path of §5.2.
    pub fn eval_all(&self, values: &[f64]) -> Vec<f64> {
        self.sets
            .iter()
            .map(|set| {
                let sum: f64 = set.iter().map(|t| values[t.index()]).sum();
                sum.min(1.0)
            })
            .collect()
    }

    /// Renders a set as a human-readable union expression.
    pub fn display(&self, s: SetId, terms: &TermTable) -> String {
        let set = &self.sets[s.index()];
        if set.is_empty() {
            return "∅".to_owned();
        }
        set.iter()
            .map(|&t| terms.kind(t).to_string())
            .collect::<Vec<_>>()
            .join(" ∪ ")
    }
}

impl Default for UnionArena {
    fn default() -> Self {
        UnionArena::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> (TermTable, TermId, TermId, TermId) {
        let mut t = TermTable::new();
        let a = t.intern(TermKind::ReadPort("s1".into()));
        let b = t.intern(TermKind::ReadPort("s2".into()));
        let c = t.intern(TermKind::WritePort("s3".into()));
        (t, a, b, c)
    }

    #[test]
    fn interning_dedupes_terms() {
        let (mut t, a, _, _) = table();
        assert_eq!(t.intern(TermKind::ReadPort("s1".into())), a);
        assert_eq!(t.len(), 4); // TOP + 3
        assert_eq!(t.get(&TermKind::ReadPort("s1".into())), Some(a));
        assert_eq!(t.get(&TermKind::ReadPort("zz".into())), None);
    }

    #[test]
    fn interning_stores_each_kind_exactly_once() {
        // Regression guard for the old index layout, which kept a second
        // owned copy of every TermKind (and its String) as a HashMap key.
        // The hash-bucket index must preserve the interning semantics while
        // `terms` remains the only owner.
        let mut t = TermTable::new();
        let a = t.intern(TermKind::ReadPort("rob".into()));
        let b = t.intern(TermKind::WritePort("rob".into()));
        let c = t.intern(TermKind::Injected("rob".into()));
        assert!(a != b && b != c && a != c);
        // Re-interning and lookups resolve against the stored copies.
        assert_eq!(t.intern(TermKind::ReadPort("rob".into())), a);
        assert_eq!(t.intern(TermKind::Top), t.top());
        assert_eq!(t.get(&TermKind::Injected("rob".into())), Some(c));
        assert_eq!(t.get(&TermKind::Injected("nope".into())), None);
        assert_eq!(t.len(), 4); // TOP + 3 distinct kinds, no duplicates.
        let distinct: std::collections::HashSet<&TermKind> = t.iter().map(|(_, k)| k).collect();
        assert_eq!(distinct.len(), t.len());
        // Equality (and thus snapshot comparisons) still sees through the
        // index representation.
        let clone = t.clone();
        assert_eq!(clone, t);
    }

    #[test]
    fn union_has_set_semantics() {
        let (_, a, b, _) = table();
        let mut ar = UnionArena::new();
        let sa = ar.singleton(a);
        let sb = ar.singleton(b);
        let sab = ar.union2(sa, sb);
        // pAVF_1 ∪ (pAVF_1 ∪ pAVF_2) = pAVF_1 ∪ pAVF_2 — the Figure 7
        // simplification.
        let again = ar.union2(sa, sab);
        assert_eq!(again, sab);
        assert_eq!(ar.terms(sab).len(), 2);
    }

    #[test]
    fn union_identities() {
        let (_, a, b, _) = table();
        let mut ar = UnionArena::new();
        let sa = ar.singleton(a);
        let sb = ar.singleton(b);
        assert_eq!(ar.union2(sa, ar.empty()), sa);
        assert_eq!(ar.union2(ar.empty(), sb), sb);
        assert_eq!(ar.union2(sa, sb), ar.union2(sb, sa));
        assert_eq!(ar.union2(sa, sa), sa);
    }

    #[test]
    fn union_memo_is_transparent() {
        let (_, a, b, c) = table();
        let mut ar = UnionArena::new();
        let sa = ar.singleton(a);
        let sb = ar.singleton(b);
        let sc = ar.singleton(c);
        let first = ar.union2(sa, sb);
        // The memoized pair returns the same id in either operand order
        // without growing the arena.
        let len = ar.len();
        assert_eq!(ar.union2(sa, sb), first);
        assert_eq!(ar.union2(sb, sa), first);
        assert_eq!(ar.len(), len);
        // Unseen pairs still intern fresh sets.
        let abc = ar.union2(first, sc);
        assert_eq!(ar.terms(abc).len(), 3);
    }

    #[test]
    fn top_absorbs() {
        let (_, a, _, _) = table();
        let mut ar = UnionArena::new();
        let sa = ar.singleton(a);
        let top = ar.top();
        assert_eq!(ar.union2(sa, top), top);
        let explicit = ar.intern(vec![TermId(0), a]);
        assert_eq!(explicit, top);
    }

    #[test]
    fn eval_is_capped_sum() {
        let (t, a, b, c) = table();
        let mut ar = UnionArena::new();
        let sab = {
            let sa = ar.singleton(a);
            let sb = ar.singleton(b);
            ar.union2(sa, sb)
        };
        let values = t.values(
            &|name| match name {
                "s1" => Some((0.10, 0.0)),
                "s2" => Some((0.02, 0.0)),
                "s3" => Some((0.0, 0.95)),
                _ => None,
            },
            &|_| None,
            1.0,
            1.0,
        );
        assert!((ar.eval(sab, &values) - 0.12).abs() < 1e-12);
        assert_eq!(ar.eval(ar.empty(), &values), 0.0);
        assert_eq!(ar.eval(ar.top(), &values), 1.0);
        let sc = ar.singleton(c);
        let big = ar.union2(sab, sc);
        let full = ar.union2(big, sc);
        assert!((ar.eval(full, &values) - 1.0).abs() < 1e-12 || ar.eval(full, &values) < 1.0);
        // eval_all agrees with eval.
        let all = ar.eval_all(&values);
        for (i, v) in all.iter().enumerate() {
            assert!((v - ar.eval(SetId(i as u32), &values)).abs() < 1e-15);
        }
    }

    #[test]
    fn values_fall_back_to_defaults() {
        let (t, _, _, _) = table();
        let values = t.values(&|_| None, &|_| None, 0.7, 0.3);
        // TOP pinned to 1.0 regardless.
        assert_eq!(values[0], 1.0);
        for v in &values[1..] {
            assert_eq!(*v, 0.7);
        }
    }

    #[test]
    fn display_renders_union() {
        let (t, a, b, _) = table();
        let mut ar = UnionArena::new();
        let sa = ar.singleton(a);
        let sb = ar.singleton(b);
        let sab = ar.union2(sa, sb);
        let s = ar.display(sab, &t);
        assert!(s.contains("pAVF_R(s1)"));
        assert!(s.contains("∪"));
        assert_eq!(ar.display(ar.empty(), &t), "∅");
    }

    #[test]
    fn union_many_folds() {
        let (_, a, b, c) = table();
        let mut ar = UnionArena::new();
        let singles: Vec<SetId> = [a, b, c].iter().map(|&t| ar.singleton(t)).collect();
        let u = ar.union_many(singles.iter().copied());
        assert_eq!(ar.terms(u).len(), 3);
    }
}
