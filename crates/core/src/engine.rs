//! The top-level SART engine: prepares a netlist, runs the relaxation,
//! resolves final AVFs, and exposes the closed-form results.

use seqavf_netlist::graph::{Netlist, NodeId, NodeKind};
use seqavf_netlist::scc::{find_loops_traced, LoopAnalysis};
use seqavf_obs::Collector;
use serde::{Deserialize, Serialize};

use crate::arena::{SetId, TermTable, UnionArena};
use crate::classify::{classify, NodeRole, RoleMap};
use crate::fixpoint::{self, StoredFixpoint};
use crate::mapping::{PavfInputs, StructureMapping};
use crate::relax::{
    relax_partitioned, relax_partitioned_exact, relax_partitioned_warm,
    relax_partitioned_warm_exact, solve_global, RelaxOutcome,
};
use crate::walk::{prepare, Propagator, INJ_BOUNDARY_IN, INJ_BOUNDARY_OUT, INJ_CTRL, INJ_LOOP};

/// Configuration of a SART run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SartConfig {
    /// Injected pAVF for loop-boundary sequentials. The paper sweeps this
    /// (Figure 8) and settles on 0.3.
    pub loop_pavf: f64,
    /// Injected `pAVF_R` for configuration control registers (§5.1: 100%).
    pub ctrl_read_pavf: f64,
    /// `pAVF_R` of the input-boundary pseudo-structure (circuits outside
    /// the RTL under analysis, §5.1). Conservative default 1.0.
    pub boundary_in_pavf: f64,
    /// `pAVF_W` of the output-boundary pseudo-structure.
    pub boundary_out_pavf: f64,
    /// Port pAVF used for structures with no measured value. Conservative
    /// default 1.0.
    pub default_port_pavf: f64,
    /// Name substrings identifying control registers.
    pub ctrl_patterns: Vec<String>,
    /// Relaxation iteration cap (the paper used 20).
    pub max_iterations: usize,
    /// Analyze FUB-partitioned with FUBIO merging (`true`, the paper's
    /// mode) or as one global pass (`false`; same fixpoint, useful for
    /// validation).
    pub partitioned: bool,
    /// Skip FUBs whose cross-partition boundary reads did not change in
    /// the previous relaxation sweep (`true`, the default). Results are
    /// bit-identical to full sweeps — only the work shrinks; `false`
    /// re-walks every FUB every iteration (the escape hatch behind the
    /// CLI's `--no-incremental`).
    pub incremental: bool,
    /// Worker threads for the partitioned relaxation and batch
    /// re-evaluation. Every thread count produces bit-identical
    /// annotations and `SetId` numbering (see [`crate::relax`]); `1`
    /// runs the sharded engine inline.
    pub threads: usize,
}

impl SartConfig {
    /// Canonical rendering of exactly the fields that can change a
    /// computed AVF — the cache identity of a relaxation/compilation.
    ///
    /// `threads` and `incremental` are deliberately excluded: both are
    /// execution strategies with a bit-identity contract (see
    /// [`crate::relax`]), so `--threads 8` must reuse an artifact written
    /// by `--threads 1` and vice versa. Every other field either injects a
    /// term value (`loop_pavf`, `ctrl_read_pavf`, boundary/default pAVFs),
    /// selects node roles (`ctrl_patterns`), or changes which fixpoint is
    /// reached (`max_iterations` caps convergence, `partitioned` picks the
    /// solver) — all result-affecting, all keyed.
    ///
    /// Floats render via `{:?}` (shortest round-trip), so distinct values
    /// never collide.
    pub fn result_key(&self) -> String {
        format!(
            "loop={:?} ctrl={:?} bin={:?} bout={:?} dflt={:?} pat={:?} iters={} part={}",
            self.loop_pavf,
            self.ctrl_read_pavf,
            self.boundary_in_pavf,
            self.boundary_out_pavf,
            self.default_port_pavf,
            self.ctrl_patterns,
            self.max_iterations,
            self.partitioned,
        )
    }
}

impl Default for SartConfig {
    fn default() -> Self {
        SartConfig {
            loop_pavf: 0.3,
            ctrl_read_pavf: 1.0,
            boundary_in_pavf: 1.0,
            boundary_out_pavf: 1.0,
            default_port_pavf: 1.0,
            ctrl_patterns: vec!["creg".to_owned()],
            max_iterations: 20,
            partitioned: true,
            incremental: true,
            threads: 1,
        }
    }
}

/// The SART engine, bound to one netlist.
///
/// Preparation (loop detection, role classification, term interning,
/// topological ordering) happens once in [`SartEngine::new`]; each
/// [`SartEngine::run`] then clones the propagation state, so one engine can
/// serve many configurations or input tables.
#[derive(Debug, Clone)]
pub struct SartEngine<'nl> {
    nl: &'nl Netlist,
    config: SartConfig,
    prop_template: Propagator<'nl>,
    struct_perf_names: Vec<String>,
    fub_digests: Vec<u64>,
    mapping_digest: u64,
}

impl<'nl> SartEngine<'nl> {
    /// Prepares the engine: detects loops, classifies nodes, interns pAVF
    /// terms, and computes the loop-cut topological order.
    pub fn new(nl: &'nl Netlist, mapping: &StructureMapping, config: SartConfig) -> Self {
        Self::new_traced(nl, mapping, config, &Collector::disabled())
    }

    /// [`SartEngine::new`] with observability: loop detection reports
    /// through `netlist.scc`, and classification plus term interning
    /// through a `sart.prepare` span.
    pub fn new_traced(
        nl: &'nl Netlist,
        mapping: &StructureMapping,
        config: SartConfig,
        obs: &Collector,
    ) -> Self {
        let loops = find_loops_traced(nl, obs);
        Self::with_loops(nl, mapping, config, &loops, obs)
    }

    /// [`SartEngine::new`] with a precomputed loop analysis (e.g. one
    /// restored from a graph snapshot), skipping the SCC pass entirely.
    pub fn new_with_loops(
        nl: &'nl Netlist,
        mapping: &StructureMapping,
        config: SartConfig,
        loops: &LoopAnalysis,
    ) -> Self {
        Self::with_loops(nl, mapping, config, loops, &Collector::disabled())
    }

    /// [`SartEngine::new_with_loops`] with observability (`sart.prepare`
    /// span; no `netlist.scc` span is recorded since no SCC pass runs).
    pub fn new_with_loops_traced(
        nl: &'nl Netlist,
        mapping: &StructureMapping,
        config: SartConfig,
        loops: &LoopAnalysis,
        obs: &Collector,
    ) -> Self {
        Self::with_loops(nl, mapping, config, loops, obs)
    }

    fn with_loops(
        nl: &'nl Netlist,
        mapping: &StructureMapping,
        config: SartConfig,
        loops: &LoopAnalysis,
        obs: &Collector,
    ) -> Self {
        let mut span = obs.span("sart.prepare");
        let roles = classify(nl, loops, &config.ctrl_patterns);
        // Size the arena for the worst case relaxation interns — one set
        // per direction per node — so production-scale runs never rehash.
        let mut arena = UnionArena::with_capacity(nl.node_count());
        let prep = prepare(nl, roles, mapping, &mut arena);
        // Per-FUB content digests and the mapping digest anchor cross-run
        // warm starts (see `crate::fixpoint`); both are cheap relative to
        // `prepare` and loops are only available here.
        let fub_digests = nl.fub_digests(loops);
        let mapping_digest = fixpoint::mapping_digest(nl, mapping);
        span.field_u64("nodes", nl.node_count() as u64);
        span.field_u64("terms", prep.terms.len() as u64);
        span.finish();
        let struct_perf_names = nl
            .structure_ids()
            .map(|sid| {
                mapping
                    .perf_name(sid)
                    .unwrap_or_else(|| nl.structure(sid).name())
                    .to_owned()
            })
            .collect();
        SartEngine {
            nl,
            config,
            prop_template: Propagator::new(nl, prep, arena),
            struct_perf_names,
            fub_digests,
            mapping_digest,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &SartConfig {
        &self.config
    }

    /// The netlist under analysis.
    pub fn netlist(&self) -> &'nl Netlist {
        self.nl
    }

    /// Runs the full analysis against a measured pAVF table.
    pub fn run(&self, inputs: &PavfInputs) -> SartResult {
        self.run_traced(inputs, &Collector::disabled())
    }

    /// [`SartEngine::run`] with observability: every relaxation sweep
    /// reports a `relax.sweep` span, and the final closed-form resolution
    /// a `sart.resolve` span. Collection never changes the result — the
    /// bit-identity contract across thread counts holds with it on.
    pub fn run_traced(&self, inputs: &PavfInputs, obs: &Collector) -> SartResult {
        self.run_inner(inputs, false, obs)
    }

    /// [`SartEngine::run`] without the small-design thread clamp: the
    /// partitioned relaxation engages exactly `config.threads` workers
    /// whatever the node count (see
    /// [`crate::relax::relax_partitioned_exact`]). Results are
    /// bit-identical either way — this exists for thread-scaling
    /// benchmarks and equivalence tests on sub-crossover designs.
    pub fn run_exact(&self, inputs: &PavfInputs) -> SartResult {
        self.run_inner(inputs, true, &Collector::disabled())
    }

    fn run_inner(&self, inputs: &PavfInputs, exact_threads: bool, obs: &Collector) -> SartResult {
        let mut prop = self.prop_template.clone();
        let values = term_values(&prop.prep.terms, inputs, &self.config);
        let outcome = if self.config.partitioned {
            let relax = if exact_threads {
                relax_partitioned_exact
            } else {
                relax_partitioned
            };
            relax(
                &mut prop,
                &values,
                self.config.max_iterations,
                self.config.threads,
                self.config.incremental,
                obs,
            )
        } else {
            solve_global(&mut prop, &values, obs)
        };
        self.assemble(prop, outcome, inputs, obs)
    }

    fn assemble(
        &self,
        prop: Propagator<'nl>,
        outcome: RelaxOutcome,
        inputs: &PavfInputs,
        obs: &Collector,
    ) -> SartResult {
        obs.count("relax.iterations", outcome.iterations as u64);
        let mut result = SartResult {
            config: self.config.clone(),
            terms: prop.prep.terms.clone(),
            arena: prop.arena,
            roles: prop.prep.roles.clone(),
            fwd: prop.fwd,
            bwd: prop.bwd,
            struct_perf_names: self.struct_perf_names.clone(),
            avf: Vec::new(),
            outcome,
        };
        let mut span = obs.span("sart.resolve");
        result.avf = result.reevaluate(self.nl, inputs);
        span.field_u64("nodes", result.avf.len() as u64);
        span.finish();
        result
    }

    /// Per-FUB content digests of the engine's netlist — the identities a
    /// fixpoint artifact diffs against on a later run.
    pub fn fub_digests(&self) -> &[u64] {
        &self.fub_digests
    }

    /// Digest of the structure mapping this engine was prepared with.
    pub fn mapping_digest(&self) -> u64 {
        self.mapping_digest
    }

    /// Packages a converged result as a `seqavf-fixpoint/1` artifact for
    /// a later warm start. `None` when the relaxation did not converge.
    pub fn capture_fixpoint(&self, result: &SartResult) -> Option<StoredFixpoint> {
        fixpoint::capture(
            self.nl,
            &self.fub_digests,
            &self.prop_template.prep.boundary,
            self.mapping_digest,
            result,
        )
    }

    /// [`SartEngine::run_traced`] seeded from a previously stored
    /// fixpoint: FUBs whose content digests still match adopt their
    /// converged annotations and the relaxation force-walks only the
    /// rest. Any global mismatch (config, mapping, non-converged store)
    /// degrades to a full cold solve — the returned [`WarmStatus`] says
    /// which path ran and why. Results are bit-identical to a cold run
    /// either way.
    pub fn run_warm_traced(
        &self,
        inputs: &PavfInputs,
        stored: &StoredFixpoint,
        obs: &Collector,
    ) -> (SartResult, WarmStatus) {
        let (result, status, _) = self.run_warm_inner(inputs, stored, false, obs);
        (result, status)
    }

    /// [`SartEngine::run_warm_traced`] without the small-design thread
    /// clamp, mirroring [`SartEngine::run_exact`] for equivalence tests.
    pub fn run_warm_exact(
        &self,
        inputs: &PavfInputs,
        stored: &StoredFixpoint,
    ) -> (SartResult, WarmStatus) {
        let (result, status, _) = self.run_warm_inner(inputs, stored, true, &Collector::disabled());
        (result, status)
    }

    /// [`SartEngine::run_warm_traced`] that additionally reports, per FUB,
    /// whether the FUB is *patch-clean*: it was seeded from the stored
    /// fixpoint AND the relaxation left every one of its annotations at
    /// the seeded value. A patch-clean FUB's closed forms are exactly the
    /// previous revision's, so a compiled sweep DAG built for that
    /// revision can keep its ops verbatim (see
    /// [`crate::compile::CompiledSweep::patch_traced`]). The mask is
    /// `None` when the solve fell back to cold.
    pub fn run_warm_patch_traced(
        &self,
        inputs: &PavfInputs,
        stored: &StoredFixpoint,
        obs: &Collector,
    ) -> (SartResult, WarmStatus, Option<Vec<bool>>) {
        self.run_warm_inner(inputs, stored, false, obs)
    }

    /// [`SartEngine::run_warm_patch_traced`] without the small-design
    /// thread clamp, mirroring [`SartEngine::run_exact`].
    pub fn run_warm_patch_exact(
        &self,
        inputs: &PavfInputs,
        stored: &StoredFixpoint,
    ) -> (SartResult, WarmStatus, Option<Vec<bool>>) {
        self.run_warm_inner(inputs, stored, true, &Collector::disabled())
    }

    fn run_warm_inner(
        &self,
        inputs: &PavfInputs,
        stored: &StoredFixpoint,
        exact_threads: bool,
        obs: &Collector,
    ) -> (SartResult, WarmStatus, Option<Vec<bool>>) {
        if !self.config.partitioned || !self.config.incremental {
            return (
                self.run_inner(inputs, exact_threads, obs),
                WarmStatus::Cold("config disables partitioned incremental relaxation"),
                None,
            );
        }
        let mut prop = self.prop_template.clone();
        let (dirty, plan) = match fixpoint::seed(
            stored,
            self.nl,
            &self.fub_digests,
            self.mapping_digest,
            &self.config.result_key(),
            &mut prop,
        ) {
            Ok(seeded) => seeded,
            Err(reason) => {
                return (
                    self.run_inner(inputs, exact_threads, obs),
                    WarmStatus::Cold(reason),
                    None,
                );
            }
        };
        // Snapshot the seeded annotations: after relaxation, a seeded FUB
        // whose final SetIds all equal the seed is patch-clean — cone
        // propagation did not move it, so the previous revision's compiled
        // DAG still lowers it correctly. SetId equality is content
        // equality (the arena interns sets by content).
        let seed_fwd = prop.fwd.clone();
        let seed_bwd = prop.bwd.clone();
        let values = term_values(&prop.prep.terms, inputs, &self.config);
        let relax = if exact_threads {
            relax_partitioned_warm_exact
        } else {
            relax_partitioned_warm
        };
        let outcome = relax(
            &mut prop,
            &values,
            self.config.max_iterations,
            self.config.threads,
            &dirty,
            obs,
        );
        let fub_nodes = fixpoint::nodes_by_fub(self.nl);
        let clean: Vec<bool> = self
            .nl
            .fub_ids()
            .map(|f| {
                !dirty[f.index()]
                    && fub_nodes[f.index()].iter().all(|n| {
                        let i = n.index();
                        prop.fwd[i] == seed_fwd[i] && prop.bwd[i] == seed_bwd[i]
                    })
            })
            .collect();
        (
            self.assemble(prop, outcome, inputs, obs),
            WarmStatus::Warm {
                seeded_fubs: plan.seeded_fubs,
                dirty_fubs: plan.dirty_fubs,
            },
            Some(clean),
        )
    }
}

/// Which solve path a warm-start request actually took.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WarmStatus {
    /// The stored fixpoint seeded the solve; the counts describe the
    /// per-FUB digest diff.
    Warm {
        /// FUBs whose stored annotations were adopted.
        seeded_fubs: usize,
        /// FUBs force-walked from the conservative default.
        dirty_fubs: usize,
    },
    /// The artifact could not seed this run; a full cold solve ran.
    Cold(&'static str),
}

/// Builds the term-value vector for an input table under a configuration.
pub(crate) fn term_values(terms: &TermTable, inputs: &PavfInputs, config: &SartConfig) -> Vec<f64> {
    let ports = |name: &str| inputs.port(name).map(|p| (p.read.value(), p.write.value()));
    let injected = |name: &str| match name {
        INJ_LOOP => Some(config.loop_pavf),
        INJ_CTRL => Some(config.ctrl_read_pavf),
        INJ_BOUNDARY_IN => Some(config.boundary_in_pavf),
        INJ_BOUNDARY_OUT => Some(config.boundary_out_pavf),
        _ => None,
    };
    terms.values(&ports, &injected, config.default_port_pavf, 1.0)
}

/// The result of a SART run: closed-form annotations for every node plus
/// the resolved AVFs and convergence telemetry.
#[derive(Debug, Clone)]
pub struct SartResult {
    /// Configuration the run used.
    pub config: SartConfig,
    /// Interned terms.
    pub terms: TermTable,
    /// Interned term sets.
    pub arena: UnionArena,
    /// Node roles.
    pub roles: RoleMap,
    /// Forward (read-port walk) annotation per node.
    pub fwd: Vec<SetId>,
    /// Backward (write-port walk) annotation per node.
    pub bwd: Vec<SetId>,
    /// Performance-model structure name per netlist structure.
    pub struct_perf_names: Vec<String>,
    /// Resolved AVF per node under the run's input table.
    pub avf: Vec<f64>,
    /// Relaxation telemetry.
    pub outcome: RelaxOutcome,
}

impl SartResult {
    /// The resolved AVF of a node.
    pub fn avf(&self, id: NodeId) -> f64 {
        self.avf[id.index()]
    }

    /// All node AVFs, indexed by [`NodeId::index`].
    pub fn node_avfs(&self) -> &[f64] {
        &self.avf
    }

    /// Iterations the relaxation ran.
    pub fn iterations(&self) -> usize {
        self.outcome.iterations
    }

    /// The term-value vector this result's configuration assigns to an
    /// input table (TOP pinned to 1.0, injected terms from the config,
    /// ports from the measurements).
    pub fn term_values(&self, inputs: &PavfInputs) -> Vec<f64> {
        term_values(&self.terms, inputs, &self.config)
    }

    /// Re-resolves every node's AVF for a *new* measured input table using
    /// the stored closed forms — the fast path of §5.2 ("simply … plug
    /// those values into the closed form equations"). No walks are re-run.
    pub fn reevaluate(&self, nl: &Netlist, inputs: &PavfInputs) -> Vec<f64> {
        let values = term_values(&self.terms, inputs, &self.config);
        let set_vals = self.arena.eval_all(&values);
        let mut avf = Vec::with_capacity(nl.node_count());
        for id in nl.nodes() {
            let i = id.index();
            let min_fb = set_vals[self.fwd[i].index()].min(set_vals[self.bwd[i].index()]);
            let v = match self.roles.role(id) {
                // "For the nodes that have pAVF values computed by the ACE
                // model, the estimate value is discarded in favor of the
                // computed value" (§4.2).
                NodeRole::StructCell => {
                    let NodeKind::StructCell { structure, .. } = nl.kind(id) else {
                        unreachable!("role implies kind");
                    };
                    let perf = &self.struct_perf_names[structure.index()];
                    inputs.structure_avf(perf).unwrap_or(min_fb)
                }
                // Control registers hold essentially-always-ACE
                // configuration state.
                NodeRole::ControlReg => self.config.ctrl_read_pavf,
                // Loop sequentials carry the injected loop-boundary value.
                NodeRole::LoopSeq => self.config.loop_pavf,
                _ => min_fb,
            };
            avf.push(v);
        }
        avf
    }

    /// Re-resolves every node's AVF for a *batch* of measured input tables
    /// — the per-workload fast path of §5.2 fanned out over `threads`
    /// scoped workers. Tables are independent (each is one closed-form
    /// evaluation pass against the stored arena), so the output is exactly
    /// `inputs.iter().map(|i| self.reevaluate(nl, i))`, in order.
    pub fn reevaluate_many(
        &self,
        nl: &Netlist,
        inputs: &[PavfInputs],
        threads: usize,
    ) -> Vec<Vec<f64>> {
        let threads = threads.max(1).min(inputs.len().max(1));
        if threads == 1 {
            return inputs.iter().map(|i| self.reevaluate(nl, i)).collect();
        }
        let chunk = inputs.len().div_ceil(threads);
        let mut out: Vec<Vec<f64>> = Vec::with_capacity(inputs.len());
        std::thread::scope(|s| {
            let handles: Vec<_> = inputs
                .chunks(chunk)
                .map(|part| {
                    s.spawn(move || {
                        part.iter()
                            .map(|i| self.reevaluate(nl, i))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for h in handles {
                out.extend(h.join().expect("re-evaluation worker panicked"));
            }
        });
        out
    }

    /// Mean AVF over sequential nodes (weighted by count — every flop and
    /// latch contributes equally, as in the paper's 14% headline figure).
    pub fn mean_seq_avf(&self, nl: &Netlist) -> f64 {
        let mut sum = 0.0;
        let mut count = 0usize;
        for id in nl.seq_nodes() {
            sum += self.avf[id.index()];
            count += 1;
        }
        if count == 0 {
            0.0
        } else {
            sum / count as f64
        }
    }

    /// Fraction of nodes reached by at least one walk (the paper's run
    /// visited >98%).
    pub fn visited_fraction(&self, nl: &Netlist) -> f64 {
        let top = self.arena.top();
        let mut visited = 0usize;
        for id in nl.nodes() {
            let i = id.index();
            if self.fwd[i] != top || self.bwd[i] != top {
                visited += 1;
            }
        }
        visited as f64 / nl.node_count().max(1) as f64
    }

    /// Renders the closed-form AVF equation for a node, e.g.
    /// `MIN(pAVF_R(s1) ∪ pAVF_R(s2), pAVF_W(s3))`.
    pub fn closed_form(&self, id: NodeId) -> String {
        let i = id.index();
        format!(
            "MIN({}, {})",
            self.arena.display(self.fwd[i], &self.terms),
            self.arena.display(self.bwd[i], &self.terms)
        )
    }

    /// The forward-walk pAVF of a node under the run's stored resolution.
    pub fn forward_value(&self, id: NodeId, inputs: &PavfInputs) -> f64 {
        let values = term_values(&self.terms, inputs, &self.config);
        self.arena.eval(self.fwd[id.index()], &values)
    }

    /// The backward-walk pAVF of a node under the run's stored resolution.
    pub fn backward_value(&self, id: NodeId, inputs: &PavfInputs) -> f64 {
        let values = term_values(&self.terms, inputs, &self.config);
        self.arena.eval(self.bwd[id.index()], &values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqavf_netlist::flatten::parse_netlist;

    /// The paper's Figure 7 circuit: structures S1, S2 feeding a join/split
    /// network into S3 and S4, with pAVF_1 = 0.10 and pAVF_2 = 0.02.
    const FIGURE7: &str = r"
.design fig7
.fub f
  .struct s1 1
  .struct s2 1
  .struct s3 1
  .struct s4 1
  .flop q1a s1[0]
  .flop q1b s2[0]
  .flop q2a q1a
  .gate nor g1 q2a q1b
  .flop q3b g1
  .gate nor g2 q2a g1
  .flop q3a g2
  .sw s3[0] q3a
  .sw s4[0] q3b
.endfub
.end
";

    fn fig7_inputs() -> PavfInputs {
        let mut p = PavfInputs::new();
        p.set_port("f.s1", 0.10, 0.5);
        p.set_port("f.s2", 0.02, 0.5);
        p.set_port("f.s3", 0.5, 0.9);
        p.set_port("f.s4", 0.5, 0.9);
        p
    }

    fn run(text: &str, inputs: &PavfInputs, config: SartConfig) -> (Netlist, SartResult) {
        let nl = parse_netlist(text).unwrap();
        let engine = SartEngine::new(&nl, &StructureMapping::new(), config);
        let r = engine.run(inputs);
        (engine.netlist().clone(), r)
    }

    #[test]
    fn figure7_forward_values() {
        let (nl, r) = run(FIGURE7, &fig7_inputs(), SartConfig::default());
        let inputs = fig7_inputs();
        // Q1a and Q2a carry pAVF_1 = 0.10.
        for q in ["f.q1a", "f.q2a"] {
            let id = nl.lookup(q).unwrap();
            assert!((r.forward_value(id, &inputs) - 0.10).abs() < 1e-12, "{q}");
        }
        // Q1b carries pAVF_2 = 0.02.
        let q1b = nl.lookup("f.q1b").unwrap();
        assert!((r.forward_value(q1b, &inputs) - 0.02).abs() < 1e-12);
        // Join outputs carry the union 0.12; the nested union
        // pAVF_1 ∪ (pAVF_1 ∪ pAVF_2) simplifies to 0.12, not 0.22.
        for q in ["f.q3b", "f.q3a"] {
            let id = nl.lookup(q).unwrap();
            assert!(
                (r.forward_value(id, &inputs) - 0.12).abs() < 1e-12,
                "{q} = {}",
                r.forward_value(id, &inputs)
            );
        }
    }

    #[test]
    fn figure7_final_avfs_are_min_of_walks() {
        let (nl, r) = run(FIGURE7, &fig7_inputs(), SartConfig::default());
        let inputs = fig7_inputs();
        for id in nl.seq_nodes() {
            let f = r.forward_value(id, &inputs);
            let b = r.backward_value(id, &inputs);
            assert!((r.avf(id) - f.min(b)).abs() < 1e-12, "{}", nl.name(id));
        }
        // With write pAVFs of 0.9 through the backward union, forward
        // dominates: Q1a stays at 0.10.
        let q1a = nl.lookup("f.q1a").unwrap();
        assert!((r.avf(q1a) - 0.10).abs() < 1e-12);
    }

    #[test]
    fn backward_refines_when_write_rate_is_low() {
        let mut inputs = fig7_inputs();
        // S3/S4 almost never accept ACE writes: backward walk caps
        // everything upstream.
        inputs.set_port("f.s3", 0.5, 0.01);
        inputs.set_port("f.s4", 0.5, 0.01);
        let (nl, r) = run(FIGURE7, &inputs, SartConfig::default());
        let q1a = nl.lookup("f.q1a").unwrap();
        // Q1a feeds both sinks: backward = 0.01 + 0.01 = 0.02 < 0.10.
        assert!((r.avf(q1a) - 0.02).abs() < 1e-12, "got {}", r.avf(q1a));
    }

    #[test]
    fn closed_form_mentions_terms() {
        let (nl, r) = run(FIGURE7, &fig7_inputs(), SartConfig::default());
        let q3a = nl.lookup("f.q3a").unwrap();
        let s = r.closed_form(q3a);
        assert!(s.contains("pAVF_R(f.s1)"), "{s}");
        assert!(s.contains("pAVF_R(f.s2)"), "{s}");
        assert!(s.starts_with("MIN("));
    }

    #[test]
    fn reevaluate_matches_fresh_run() {
        let (nl, r) = run(FIGURE7, &fig7_inputs(), SartConfig::default());
        let mut new_inputs = fig7_inputs();
        new_inputs.set_port("f.s1", 0.25, 0.5);
        new_inputs.set_port("f.s2", 0.05, 0.5);
        let cheap = r.reevaluate(&nl, &new_inputs);
        let engine = SartEngine::new(&nl, &StructureMapping::new(), SartConfig::default());
        let fresh = engine.run(&new_inputs);
        for id in nl.nodes() {
            assert!(
                (cheap[id.index()] - fresh.avf(id)).abs() < 1e-12,
                "{}",
                nl.name(id)
            );
        }
    }

    #[test]
    fn reevaluate_many_matches_single() {
        let (nl, r) = run(FIGURE7, &fig7_inputs(), SartConfig::default());
        let tables: Vec<PavfInputs> = (0..5)
            .map(|k| {
                let mut p = fig7_inputs();
                p.set_port("f.s1", 0.05 * (k + 1) as f64, 0.5);
                p
            })
            .collect();
        let batch = r.reevaluate_many(&nl, &tables, 3);
        assert_eq!(batch.len(), tables.len());
        for (k, table) in tables.iter().enumerate() {
            let single = r.reevaluate(&nl, table);
            assert_eq!(batch[k], single, "workload {k}");
        }
    }

    #[test]
    fn thread_count_is_invisible_in_results() {
        let inputs = fig7_inputs();
        let (_, seq) = run(FIGURE7, &inputs, SartConfig::default());
        let (nl, par) = run(
            FIGURE7,
            &inputs,
            SartConfig {
                threads: 4,
                ..SartConfig::default()
            },
        );
        // Bit-identical SetId annotations and AVFs, per the sharded-arena
        // contract.
        assert_eq!(seq.fwd, par.fwd);
        assert_eq!(seq.bwd, par.bwd);
        assert_eq!(seq.arena.len(), par.arena.len());
        for id in nl.nodes() {
            assert_eq!(seq.avf(id).to_bits(), par.avf(id).to_bits());
        }
    }

    #[test]
    fn incremental_mode_is_invisible_in_results() {
        let inputs = fig7_inputs();
        let (_, inc) = run(FIGURE7, &inputs, SartConfig::default());
        let (nl, full) = run(
            FIGURE7,
            &inputs,
            SartConfig {
                incremental: false,
                ..SartConfig::default()
            },
        );
        assert_eq!(inc.fwd, full.fwd);
        assert_eq!(inc.bwd, full.bwd);
        assert_eq!(inc.arena.len(), full.arena.len());
        assert_eq!(inc.iterations(), full.iterations());
        for id in nl.nodes() {
            assert_eq!(inc.avf(id).to_bits(), full.avf(id).to_bits());
        }
        // The default mode never walks more than the full mode.
        assert!(inc.outcome.total_walked_nodes() <= full.outcome.total_walked_nodes());
    }

    #[test]
    fn outcome_reports_wall_time() {
        let (_, r) = run(FIGURE7, &fig7_inputs(), SartConfig::default());
        assert!(!r.outcome.trace.is_empty());
        assert!(r.outcome.total_wall_seconds() >= 0.0);
    }

    #[test]
    fn partitioned_equals_global_fixpoint() {
        let inputs = fig7_inputs();
        let (_, part) = run(FIGURE7, &inputs, SartConfig::default());
        let (nl, glob) = run(
            FIGURE7,
            &inputs,
            SartConfig {
                partitioned: false,
                ..SartConfig::default()
            },
        );
        for id in nl.nodes() {
            assert!((part.avf(id) - glob.avf(id)).abs() < 1e-12);
        }
    }

    #[test]
    fn struct_cells_take_measured_avf() {
        let mut inputs = fig7_inputs();
        inputs.set_structure_avf("f.s1", 0.42);
        let (nl, r) = run(FIGURE7, &inputs, SartConfig::default());
        let cell = nl.lookup("f.s1[0]").unwrap();
        assert!((r.avf(cell) - 0.42).abs() < 1e-12);
    }

    #[test]
    fn loop_and_ctrl_nodes_take_injected_values() {
        let text = r"
.design lc
.fub f
  .input cfg
  .struct s1 1
  .flop creg_a cfg cfg
  .flop l1 l2
  .flop l2 l1
  .flop q s1[0]
  .sw s1[0] q
.endfub
.end
";
        let inputs = PavfInputs::new();
        let (nl, r) = run(text, &inputs, SartConfig::default());
        assert_eq!(r.avf(nl.lookup("f.creg_a").unwrap()), 1.0);
        assert!((r.avf(nl.lookup("f.l1").unwrap()) - 0.3).abs() < 1e-12);
        assert_eq!(r.roles.control_reg_bits(), 1);
        assert_eq!(r.roles.loop_seq_bits(), 2);
    }

    #[test]
    fn unmeasured_structures_fall_back_to_conservative_default() {
        // No inputs at all: everything resolves against default port 1.0.
        let (nl, r) = run(FIGURE7, &PavfInputs::new(), SartConfig::default());
        for id in nl.seq_nodes() {
            assert_eq!(r.avf(id), 1.0, "{}", nl.name(id));
        }
    }

    #[test]
    fn visited_fraction_is_high() {
        let (nl, r) = run(FIGURE7, &fig7_inputs(), SartConfig::default());
        assert!(r.visited_fraction(&nl) > 0.98);
    }

    #[test]
    fn traced_run_emits_phase_spans_and_identical_results() {
        let nl = parse_netlist(FIGURE7).unwrap();
        let inputs = fig7_inputs();
        let obs = Collector::new();
        let engine = SartEngine::new_traced(
            &nl,
            &StructureMapping::new(),
            SartConfig {
                threads: 2,
                ..SartConfig::default()
            },
            &obs,
        );
        let traced = engine.run_traced(&inputs, &obs);
        let plain = engine.run(&inputs);
        // Collection must not perturb the analysis in any way.
        assert_eq!(traced.fwd, plain.fwd);
        assert_eq!(traced.bwd, plain.bwd);
        for id in nl.nodes() {
            assert_eq!(traced.avf(id).to_bits(), plain.avf(id).to_bits());
        }
        let report = obs.report();
        for phase in ["netlist.scc", "sart.prepare", "relax.sweep", "sart.resolve"] {
            assert!(report.span(phase).is_some(), "missing span `{phase}`");
        }
        // One relax.sweep span per traced sweep.
        assert_eq!(
            report.span("relax.sweep").unwrap().count,
            traced.outcome.trace.len()
        );
        assert!(report.counter("relax.iterations").is_some());
        assert!(report.counter("relax.changed_sets").is_some());
    }

    #[test]
    fn mean_seq_avf_in_range() {
        let (nl, r) = run(FIGURE7, &fig7_inputs(), SartConfig::default());
        let m = r.mean_seq_avf(&nl);
        assert!(m > 0.0 && m <= 1.0);
    }
}
