//! The multi-workload sweep driver: compile once, evaluate per workload,
//! and skip relaxation entirely on repeated sweeps via an on-disk cache.
//!
//! The paper's amortization argument (§5.2) is that SART's symbolic result
//! makes per-workload AVF nearly free: one relaxation, then cheap
//! substitution of each workload's measured pAVF terms. This module
//! industrializes that path:
//!
//! 1. [`run_sweep`] relaxes the design once (or loads a cached compiled
//!    DAG), lowers the closed forms with [`CompiledSweep::compile`], and
//!    evaluates every workload's input table in parallel.
//! 2. [`SweepCache`] persists the compiled DAG keyed by
//!    **(netlist content hash, structure mapping, result-affecting
//!    `SartConfig` fields)** — see [`cache_key`]. The relaxation fixpoint
//!    is symbolic and independent of input values (see [`crate::relax`]),
//!    so those inputs fully determine the compiled artifact; a
//!    byte-identical netlist under the same configuration may reuse it
//!    regardless of file name — and regardless of `threads` or
//!    `incremental`, which change execution strategy but never the result
//!    — while any netlist edit, mapping edit, or result-affecting
//!    configuration change produces a different key and a fresh
//!    relaxation.
//!
//! Observability: compilation records a `sweep.compile` span, every
//! workload evaluation a `sweep.eval` span, and cache consultations bump
//! the `sweep.cache.hit` / `sweep.cache.miss` counters.

use std::path::{Path, PathBuf};

use seqavf_netlist::graph::Netlist;
use seqavf_netlist::scc::LoopAnalysis;
use seqavf_obs::Collector;

use crate::compile::{CompileStats, CompiledSweep, PatchStats};
use crate::engine::{SartConfig, SartEngine, SartResult, WarmStatus};
use crate::fixpoint;
use crate::mapping::{PavfInputs, StructureMapping};

/// The sweep-cache key: a 64-bit FNV-1a hash over the netlist's semantic
/// content digest ([`Netlist::content_digest`] — the same digest the
/// binary graph snapshot embeds), the structure→performance-counter
/// mapping, and the configuration's *result key*
/// ([`SartConfig::result_key`]). The digest depends only on graph
/// *content*, never on the file it was parsed from, so renaming a design
/// file cannot invalidate the cache while any structural edit must.
///
/// The result key deliberately excludes `threads` and `incremental`:
/// both are execution strategies with a bit-identity guarantee, so a
/// `--threads 8` sweep reuses the artifact a `--threads 1` sweep wrote.
/// The mapping is keyed because it decides which structures carry
/// performance-counter names — it changes the compiled DAG's `Struct`
/// slots and therefore the evaluated AVFs.
pub fn cache_key(nl: &Netlist, mapping: &StructureMapping, config: &SartConfig) -> u64 {
    cache_key_parts(
        nl.content_digest(),
        &mapping.to_text(nl),
        &config.result_key(),
    )
}

/// [`cache_key`] from its already-extracted ingredients. The warm patch
/// path uses this to address the *previous* revision's compiled artifact:
/// the fixpoint artifact records the old content digest
/// ([`crate::fixpoint::StoredFixpoint::content_digest`]), while mapping
/// text and result key are revision-independent for a graph edit.
pub fn cache_key_parts(content_digest: u64, mapping_text: &str, result_key: &str) -> u64 {
    let mut h = Fnv1a64::new();
    h.update(&content_digest.to_le_bytes());
    h.update(&[0]);
    h.update(mapping_text.as_bytes());
    h.update(&[0]);
    h.update(result_key.as_bytes());
    h.finish()
}

/// Incremental FNV-1a (64-bit).
pub(crate) struct Fnv1a64(u64);

impl Fnv1a64 {
    pub(crate) fn new() -> Self {
        Fnv1a64(0xcbf2_9ce4_8422_2325)
    }

    pub(crate) fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    pub(crate) fn finish(&self) -> u64 {
        self.0
    }
}

/// An on-disk cache of compiled sweep artifacts.
///
/// One directory, one `sweep-<key>.txt` artifact per key. Artifacts that
/// fail to parse, embed a different configuration, or disagree with the
/// requested netlist's node count are treated as misses (and overwritten
/// by the fresh store) — corruption degrades to a recompute, never to a
/// wrong answer.
#[derive(Debug, Clone)]
pub struct SweepCache {
    dir: PathBuf,
}

impl SweepCache {
    /// Opens (creating if needed) a cache directory.
    pub fn open(dir: impl Into<PathBuf>) -> Result<SweepCache, String> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)
            .map_err(|e| format!("cannot create cache dir {}: {e}", dir.display()))?;
        Ok(SweepCache { dir })
    }

    /// The artifact path for a key.
    pub fn artifact_path(&self, key: u64) -> PathBuf {
        self.dir.join(format!("sweep-{key:016x}.txt"))
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Loads the artifact for `key` if present, parseable, configured as
    /// requested, and shaped for a netlist of `node_count` nodes.
    pub fn load(&self, key: u64, config: &SartConfig, node_count: usize) -> Option<CompiledSweep> {
        let text = std::fs::read_to_string(self.artifact_path(key)).ok()?;
        let compiled = CompiledSweep::from_text(&text, config).ok()?;
        (compiled.node_count() == node_count).then_some(compiled)
    }

    /// Stores a compiled artifact under `key`.
    pub fn store(&self, key: u64, compiled: &CompiledSweep) -> Result<PathBuf, String> {
        let path = self.artifact_path(key);
        std::fs::write(&path, compiled.to_text())
            .map_err(|e| format!("cannot write cache artifact {}: {e}", path.display()))?;
        Ok(path)
    }
}

/// How the sweep obtained its compiled DAG.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheStatus {
    /// No cache directory configured: relaxed and compiled fresh.
    Disabled,
    /// Cache consulted, artifact absent or invalid: relaxed, compiled,
    /// and stored.
    Miss,
    /// Cache consulted and the artifact reused: relaxation skipped.
    Hit,
}

/// How a cache-miss sweep rebuilt its compiled DAG after an edit, when a
/// warm-started relaxation made incremental patching possible at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PatchStatus {
    /// The previous revision's cached DAG was patched in place of a full
    /// recompile ([`CompiledSweep::patch_traced`]).
    Patched(PatchStats),
    /// Patching was attempted but fell back to a full recompile, with the
    /// first reason encountered on the fallback ladder.
    Rebuilt(&'static str),
}

/// Per-workload AVF summary row.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadAvf {
    /// Workload name.
    pub workload: String,
    /// Mean AVF over sequential nodes.
    pub mean_seq_avf: f64,
    /// Lowest sequential-node AVF.
    pub min_seq_avf: f64,
    /// Highest sequential-node AVF.
    pub max_seq_avf: f64,
    /// Every node's AVF, indexed by `NodeId::index`.
    pub node_avfs: Vec<f64>,
}

/// Sweep-driver options.
#[derive(Debug, Clone, Default)]
pub struct SweepOptions {
    /// Worker threads for the per-workload evaluation fan-out (0 and 1
    /// both run inline).
    pub threads: usize,
    /// Artifact-cache directory; `None` disables the cache.
    pub cache_dir: Option<PathBuf>,
    /// Warm-start directory holding `seqavf-fixpoint/1` artifacts
    /// (see [`crate::fixpoint`]); `None` always relaxes cold. Only
    /// consulted when a fresh relaxation actually runs — a compiled-DAG
    /// cache hit skips relaxation entirely and needs no seed.
    pub warm_start: Option<PathBuf>,
}

/// Everything a sweep produces.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// Whether the compiled DAG came from the cache.
    pub cache: CacheStatus,
    /// Which solve path a warm-start request took, when a fresh
    /// relaxation ran with [`SweepOptions::warm_start`] set.
    pub warm: Option<WarmStatus>,
    /// Whether a cache-miss rebuild patched the previous revision's DAG
    /// or recompiled from scratch; `None` when no patch was attemptable
    /// (cache hit, cache disabled, or cold solve).
    pub patch: Option<PatchStatus>,
    /// Sharing statistics of the compiled DAG.
    pub stats: CompileStats,
    /// One row per requested workload, in request order.
    pub rows: Vec<WorkloadAvf>,
}

/// Runs a multi-workload sweep: obtain the compiled DAG (cache or fresh
/// relaxation seeded by `base_inputs`), then evaluate every named workload
/// table. See [`run_sweep_traced`] for the observability variant.
pub fn run_sweep(
    nl: &Netlist,
    mapping: &StructureMapping,
    config: &SartConfig,
    base_inputs: &PavfInputs,
    workloads: &[(String, PavfInputs)],
    opts: &SweepOptions,
) -> Result<SweepOutcome, String> {
    run_sweep_traced(
        nl,
        mapping,
        config,
        base_inputs,
        workloads,
        opts,
        &Collector::disabled(),
    )
}

/// [`run_sweep`] with observability (spans `sweep.compile` / `sweep.eval`,
/// counters `sweep.cache.hit` / `sweep.cache.miss`, plus the usual
/// relaxation telemetry on a miss).
pub fn run_sweep_traced(
    nl: &Netlist,
    mapping: &StructureMapping,
    config: &SartConfig,
    base_inputs: &PavfInputs,
    workloads: &[(String, PavfInputs)],
    opts: &SweepOptions,
    obs: &Collector,
) -> Result<SweepOutcome, String> {
    run_sweep_with_loops_traced(nl, mapping, config, base_inputs, workloads, opts, None, obs)
}

/// Obtains the compiled DAG for a design: from the artifact cache when
/// `cache_dir` holds a valid artifact for the (netlist, mapping, config)
/// key, otherwise via a fresh relaxation (seeded by `base_inputs`) that
/// is stored back when the cache is enabled.
///
/// This is the compile-or-cache half of [`run_sweep_with_loops_traced`],
/// split out so other consumers of the analytical result — the `validate`
/// flow's SART side in particular — share the sweep's artifacts instead
/// of re-relaxing designs the sweep already compiled.
#[allow(clippy::too_many_arguments)]
pub fn obtain_compiled_traced(
    nl: &Netlist,
    mapping: &StructureMapping,
    config: &SartConfig,
    base_inputs: &PavfInputs,
    cache_dir: Option<&Path>,
    loops: Option<&LoopAnalysis>,
    obs: &Collector,
) -> Result<(CompiledSweep, CacheStatus), String> {
    let (compiled, cache, _, _) = obtain_compiled_warm_traced(
        nl,
        mapping,
        config,
        base_inputs,
        cache_dir,
        None,
        loops,
        obs,
    )?;
    Ok((compiled, cache))
}

/// [`obtain_compiled_traced`] with an optional warm-start directory: when
/// a fresh relaxation is needed and `warm_dir` holds a fixpoint artifact
/// for this design (by name), mapping, and config, the relaxation is
/// seeded from it (`relax.warmstart.hit`); any artifact problem falls
/// back to a cold solve (`relax.warmstart.miss`). Either way, a converged
/// fresh solve refreshes the artifact so the *next* edit starts warm.
///
/// When the warm solve succeeds *and* the cache still holds the previous
/// revision's compiled DAG (addressed via the fixpoint artifact's stored
/// content digest, [`cache_key_parts`]), the DAG is **patched** instead
/// of recompiled — [`CompiledSweep::patch_traced`] re-lowers only the
/// dirty cone — and the `sweep.patch.hit` counter bumps. Any patch
/// precondition failure recompiles from scratch (`sweep.patch.
/// full_rebuild`); the returned [`PatchStatus`] reports which happened.
#[allow(clippy::too_many_arguments)]
pub fn obtain_compiled_warm_traced(
    nl: &Netlist,
    mapping: &StructureMapping,
    config: &SartConfig,
    base_inputs: &PavfInputs,
    cache_dir: Option<&Path>,
    warm_dir: Option<&Path>,
    loops: Option<&LoopAnalysis>,
    obs: &Collector,
) -> Result<
    (
        CompiledSweep,
        CacheStatus,
        Option<WarmStatus>,
        Option<PatchStatus>,
    ),
    String,
> {
    type Solved = (
        SartResult,
        Option<WarmStatus>,
        Option<fixpoint::StoredFixpoint>,
        Option<Vec<bool>>,
    );
    let solve = || -> Solved {
        let engine = match loops {
            Some(l) => SartEngine::new_with_loops_traced(nl, mapping, config.clone(), l, obs),
            None => SartEngine::new_traced(nl, mapping, config.clone(), obs),
        };
        match warm_dir {
            None => (engine.run_traced(base_inputs, obs), None, None, None),
            Some(dir) => {
                let path = fixpoint::artifact_path(
                    dir,
                    fixpoint::artifact_key(
                        nl.design_name(),
                        &mapping.to_text(nl),
                        &config.result_key(),
                    ),
                );
                let stored = fixpoint::load(&path).unwrap_or_default();
                let (result, warm, clean) = match &stored {
                    Some(s) => engine.run_warm_patch_traced(base_inputs, s, obs),
                    None => (
                        engine.run_traced(base_inputs, obs),
                        WarmStatus::Cold("no usable fixpoint artifact"),
                        None,
                    ),
                };
                match warm {
                    WarmStatus::Warm { .. } => obs.count("relax.warmstart.hit", 1),
                    WarmStatus::Cold(_) => obs.count("relax.warmstart.miss", 1),
                }
                // Best-effort refresh: the next run should warm-start from
                // *this* design's fixpoint.
                if let Some(captured) = engine.capture_fixpoint(&result) {
                    let _ = fixpoint::store(&path, &captured);
                }
                (result, Some(warm), stored, clean)
            }
        }
    };
    match cache_dir {
        None => {
            let (result, warm, _, _) = solve();
            Ok((
                CompiledSweep::compile_traced(&result, nl, obs),
                CacheStatus::Disabled,
                warm,
                None,
            ))
        }
        Some(dir) => {
            let store = SweepCache::open(dir)?;
            let key = cache_key(nl, mapping, config);
            match store.load(key, config, nl.node_count()) {
                Some(c) => {
                    obs.count("sweep.cache.hit", 1);
                    Ok((c, CacheStatus::Hit, None, None))
                }
                None => {
                    obs.count("sweep.cache.miss", 1);
                    let (result, warm, stored, clean) = solve();
                    let mut patch = None;
                    let compiled = match (&warm, &stored, &clean) {
                        (Some(WarmStatus::Warm { .. }), Some(s), Some(mask)) => {
                            let attempt = store
                                .load(
                                    cache_key_parts(
                                        s.content_digest,
                                        &mapping.to_text(nl),
                                        &config.result_key(),
                                    ),
                                    config,
                                    s.node_count,
                                )
                                .ok_or("no cached DAG for the previous revision")
                                .and_then(|old| {
                                    let layout: Vec<(&str, usize)> = s
                                        .fubs
                                        .iter()
                                        .map(|f| (f.name.as_str(), f.fwd.len()))
                                        .collect();
                                    old.patch_traced(&result, nl, &layout, mask, obs)
                                });
                            match attempt {
                                Ok((patched, stats)) => {
                                    obs.count("sweep.patch.hit", 1);
                                    patch = Some(PatchStatus::Patched(stats));
                                    patched
                                }
                                Err(reason) => {
                                    obs.count("sweep.patch.full_rebuild", 1);
                                    patch = Some(PatchStatus::Rebuilt(reason));
                                    CompiledSweep::compile_traced(&result, nl, obs)
                                }
                            }
                        }
                        _ => CompiledSweep::compile_traced(&result, nl, obs),
                    };
                    store.store(key, &compiled)?;
                    Ok((compiled, CacheStatus::Miss, warm, patch))
                }
            }
        }
    }
}

/// [`run_sweep_traced`] with an optional precomputed loop analysis (e.g.
/// one restored from a graph snapshot): when present, a fresh relaxation
/// reuses it instead of re-running the SCC pass.
#[allow(clippy::too_many_arguments)]
pub fn run_sweep_with_loops_traced(
    nl: &Netlist,
    mapping: &StructureMapping,
    config: &SartConfig,
    base_inputs: &PavfInputs,
    workloads: &[(String, PavfInputs)],
    opts: &SweepOptions,
    loops: Option<&LoopAnalysis>,
    obs: &Collector,
) -> Result<SweepOutcome, String> {
    let (compiled, cache, warm, patch) = obtain_compiled_warm_traced(
        nl,
        mapping,
        config,
        base_inputs,
        opts.cache_dir.as_deref(),
        opts.warm_start.as_deref(),
        loops,
        obs,
    )?;

    let tables: Vec<PavfInputs> = workloads.iter().map(|(_, t)| t.clone()).collect();
    let avfs = compiled.evaluate_many_traced(&tables, opts.threads, obs);
    let seq: Vec<usize> = nl.seq_nodes().map(|id| id.index()).collect();
    let rows = workloads
        .iter()
        .zip(avfs)
        .map(|((name, _), node_avfs)| {
            let mut sum = 0.0;
            let mut min = f64::INFINITY;
            let mut max = f64::NEG_INFINITY;
            for &i in &seq {
                let v = node_avfs[i];
                sum += v;
                min = min.min(v);
                max = max.max(v);
            }
            let (mean, min, max) = if seq.is_empty() {
                (0.0, 0.0, 0.0)
            } else {
                (sum / seq.len() as f64, min, max)
            };
            WorkloadAvf {
                workload: name.clone(),
                mean_seq_avf: mean,
                min_seq_avf: min,
                max_seq_avf: max,
                node_avfs,
            }
        })
        .collect();
    Ok(SweepOutcome {
        cache,
        warm,
        patch,
        stats: compiled.stats(),
        rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Standard FNV-1a 64 test vectors.
        let mut h = Fnv1a64::new();
        h.update(b"");
        assert_eq!(h.finish(), 0xcbf2_9ce4_8422_2325);
        let mut h = Fnv1a64::new();
        h.update(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
        let mut h = Fnv1a64::new();
        h.update(b"foobar");
        assert_eq!(h.finish(), 0x85944171f73967e8);
    }

    #[test]
    fn incremental_update_equals_one_shot() {
        let mut a = Fnv1a64::new();
        a.update(b"hello ");
        a.update(b"world");
        let mut b = Fnv1a64::new();
        b.update(b"hello world");
        assert_eq!(a.finish(), b.finish());
    }
}
