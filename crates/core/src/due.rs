//! SDC / DUE decomposition of sequential AVFs (§1, §3.1).
//!
//! "There are essentially two types of SER that are computed. One is
//! silent data corruption (SDC) … The second is detected uncorrectable
//! error (DUE), which measures the SER of components that have error
//! detection capability such as arrays protected with parity." With fault
//! injection the two require separate campaigns because the observation
//! points differ; the analytical flow gets both from one propagation
//! (§3.2: "SDC and DUE AVFs can be computed in a single run").
//!
//! The backward annotation of a node records *which* sinks consume its
//! data, as a set of write-port terms. A fault reaching a parity/ECC
//! protected structure's write port is detected (DUE); one reaching an
//! unprotected sink is silent (SDC). A node's AVF therefore splits by the
//! share of its backward pAVF mass flowing to protected vs unprotected
//! sinks.

use std::collections::BTreeSet;

use seqavf_netlist::graph::{Netlist, NodeId};
use serde::{Deserialize, Serialize};

use crate::arena::TermKind;
use crate::engine::SartResult;
use crate::mapping::PavfInputs;

/// Per-node SDC/DUE decomposition.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct AvfSplit {
    /// Silent-data-corruption component.
    pub sdc: f64,
    /// Detected-uncorrectable-error component.
    pub due: f64,
}

impl AvfSplit {
    /// Total AVF.
    pub fn total(self) -> f64 {
        self.sdc + self.due
    }
}

/// Whole-design SDC/DUE analysis against a set of protected structures.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DueAnalysis {
    /// Per-node splits, indexed by [`NodeId::index`].
    pub nodes: Vec<AvfSplit>,
    /// Names of the protected performance-model structures used.
    pub protected: BTreeSet<String>,
    /// Mean SDC AVF over sequential nodes.
    pub mean_seq_sdc: f64,
    /// Mean DUE AVF over sequential nodes.
    pub mean_seq_due: f64,
}

impl DueAnalysis {
    /// Decomposes a SART result's node AVFs into SDC and DUE components.
    ///
    /// `protected` names the performance-model structures whose write
    /// ports have error detection (parity/ECC). Injected sinks (loop
    /// boundaries, RTL outputs) are unprotected: faults flowing there are
    /// potential SDC.
    pub fn compute(
        result: &SartResult,
        nl: &Netlist,
        inputs: &PavfInputs,
        protected: &BTreeSet<String>,
    ) -> DueAnalysis {
        let values = result.term_values(inputs);
        let mut nodes = Vec::with_capacity(nl.node_count());
        let mut seq_sdc = 0.0;
        let mut seq_due = 0.0;
        let mut seq_count = 0usize;
        for id in nl.nodes() {
            let avf = result.avf(id);
            // Partition the backward (consumption) mass by sink protection.
            let mut det = 0.0f64;
            let mut silent = 0.0f64;
            for &t in result.arena.terms(result.bwd[id.index()]) {
                let v = values[t.index()];
                match result.terms.kind(t) {
                    TermKind::WritePort(s) if protected.contains(s) => det += v,
                    _ => silent += v,
                }
            }
            let total = det + silent;
            let due_fraction = if total == 0.0 { 0.0 } else { det / total };
            let split = AvfSplit {
                sdc: avf * (1.0 - due_fraction),
                due: avf * due_fraction,
            };
            if nl.kind(id).is_sequential() {
                seq_sdc += split.sdc;
                seq_due += split.due;
                seq_count += 1;
            }
            nodes.push(split);
        }
        let n = seq_count.max(1) as f64;
        DueAnalysis {
            nodes,
            protected: protected.clone(),
            mean_seq_sdc: seq_sdc / n,
            mean_seq_due: seq_due / n,
        }
    }

    /// The split for one node.
    pub fn split(&self, id: NodeId) -> AvfSplit {
        self.nodes[id.index()]
    }

    /// Fraction of the mean sequential AVF that is detected (DUE).
    pub fn due_share(&self) -> f64 {
        let total = self.mean_seq_sdc + self.mean_seq_due;
        if total == 0.0 {
            0.0
        } else {
            self.mean_seq_due / total
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{SartConfig, SartEngine};
    use crate::mapping::StructureMapping;
    use seqavf_netlist::flatten::parse_netlist;

    /// One source structure splitting into two sinks, one protected.
    const SPLIT: &str = r"
.design d
.fub f
  .struct src 1
  .struct plain 1
  .struct parity 1
  .flop q1 src[0]
  .flop q2a q1
  .flop q2b q1
  .sw plain[0] q2a
  .sw parity[0] q2b
.endfub
.end
";

    fn setup(
        protect: &[&str],
    ) -> (
        seqavf_netlist::graph::Netlist,
        SartResult,
        PavfInputs,
        DueAnalysis,
    ) {
        let nl = parse_netlist(SPLIT).unwrap();
        let mut inputs = PavfInputs::new();
        inputs.set_port("f.src", 0.8, 0.1);
        inputs.set_port("f.plain", 0.1, 0.2);
        inputs.set_port("f.parity", 0.1, 0.2);
        let engine = SartEngine::new(&nl, &StructureMapping::new(), SartConfig::default());
        let result = engine.run(&inputs);
        let protected: BTreeSet<String> = protect.iter().map(|s| (*s).to_owned()).collect();
        let due = DueAnalysis::compute(&result, &nl, &inputs, &protected);
        (nl, result, inputs, due)
    }

    #[test]
    fn split_components_sum_to_avf() {
        let (nl, result, _, due) = setup(&["f.parity"]);
        for id in nl.nodes() {
            let s = due.split(id);
            assert!(
                (s.total() - result.avf(id)).abs() < 1e-12,
                "{}",
                nl.name(id)
            );
            assert!(s.sdc >= 0.0 && s.due >= 0.0);
        }
    }

    #[test]
    fn fault_feeding_only_protected_sink_is_pure_due() {
        let (nl, _, _, due) = setup(&["f.parity"]);
        let q2b = nl.lookup("f.q2b").unwrap();
        let s = due.split(q2b);
        assert_eq!(s.sdc, 0.0, "q2b only reaches the parity structure");
        assert!(s.due > 0.0);
    }

    #[test]
    fn fault_feeding_only_unprotected_sink_is_pure_sdc() {
        let (nl, _, _, due) = setup(&["f.parity"]);
        let q2a = nl.lookup("f.q2a").unwrap();
        let s = due.split(q2a);
        assert_eq!(s.due, 0.0);
        assert!(s.sdc > 0.0);
    }

    #[test]
    fn shared_upstream_node_splits_proportionally() {
        let (nl, _, _, due) = setup(&["f.parity"]);
        let q1 = nl.lookup("f.q1").unwrap();
        let s = due.split(q1);
        // Equal write pAVFs on both sinks: a 50/50 split.
        assert!(s.sdc > 0.0 && s.due > 0.0);
        assert!((s.sdc - s.due).abs() < 1e-12, "{s:?}");
    }

    #[test]
    fn no_protection_means_all_sdc() {
        let (nl, result, _, due) = setup(&[]);
        assert_eq!(due.due_share(), 0.0);
        for id in nl.seq_nodes() {
            assert_eq!(due.split(id).due, 0.0);
            assert!((due.split(id).sdc - result.avf(id)).abs() < 1e-12);
        }
    }

    #[test]
    fn protecting_everything_moves_share_to_due() {
        let (_, _, _, due_all) = setup(&["f.parity", "f.plain", "f.src"]);
        let (_, _, _, due_none) = setup(&[]);
        assert!(due_all.due_share() > 0.8, "{}", due_all.due_share());
        assert_eq!(due_none.due_share(), 0.0);
        // SDC + DUE totals identical across protection choices.
        let t_all = due_all.mean_seq_sdc + due_all.mean_seq_due;
        let t_none = due_none.mean_seq_sdc + due_none.mean_seq_due;
        assert!((t_all - t_none).abs() < 1e-12);
    }
}
