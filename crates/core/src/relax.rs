//! The FUB-partitioned relaxation loop (§5.2).
//!
//! "We chose to deal with this situation using a relaxation approach that
//! calculates the AVF for the entire design repeatedly over several
//! iterations, refining the AVF values each iteration. … During subsequent
//! analysis iterations (defined to be one up and one down walk through the
//! netlist for each FUB), the merged FUBIO information is used as an input
//! to the analysis. … any walk can only cross one partition during each
//! iteration."
//!
//! Each iteration re-walks FUBs against the iteration-start annotations
//! (the FUBIO merge of the previous iteration) and measures both
//! structural change (how many node annotations got a new term set) and
//! numeric change (the largest pAVF movement under a given term-value
//! vector). Convergence is declared when nothing changes structurally — an
//! exact, input-independent criterion available because the propagation is
//! symbolic.
//!
//! # Parallelism: sharded arenas with a canonicalizing barrier
//!
//! Because every cross-FUB edge reads from the iteration-start snapshot
//! (Jacobi relaxation), the per-FUB walks of one iteration are data
//! parallel. The obstacle to running them concurrently is the hash-consing
//! [`UnionArena`]: walks intern new term sets, and a shared arena would
//! need locking on the hot path.
//!
//! [`relax_partitioned`] instead gives each worker a private *shard* arena.
//! A worker walks its FUBs interning locally (importing snapshot and
//! source sets by term content, memoized per shared id), and at the end of
//! the iteration the main thread canonicalizes every walked node's final
//! term set into the shared arena in deterministic FUB/topological order.
//! Canonical [`SetId`]s therefore depend only on the netlist and inputs —
//! never on the thread count — so the parallel engine is bit-identical to
//! the sequential one (which runs the very same shard machinery inline).
//! Shard-local intermediate sets (partial unions) die with the shard and
//! never pollute the shared arena. FUBs are assigned to workers by
//! longest-processing-time scheduling over per-FUB topo sizes; only the
//! grouping depends on that choice, never the results.
//!
//! # Incremental dirty-FUB sweeps
//!
//! A FUB's walk is a pure function of its own sources and the boundary
//! annotations it reads across the partition (recorded in
//! [`BoundaryDeps`] during preparation). After the first sweep, a FUB can
//! therefore only produce new annotations if one of those boundary values
//! changed in the previous sweep. The incremental mode exploits this at
//! two granularities:
//!
//! * **FUB level** — at every iteration barrier it diffs exactly the
//!   cross-FUB-read boundary nodes against a sparse snapshot and marks the
//!   consumer FUBs dirty; the next sweep walks only dirty FUBs while clean
//!   FUBs keep their annotations untouched.
//! * **Node level** — inside a dirty FUB, recomputation is confined to the
//!   cone of the change: a node is re-evaluated only if one of its reads
//!   moved — a cross-FUB boundary value that changed at the last barrier,
//!   or a same-FUB predecessor recomputed to a new set earlier in this
//!   sweep. Change propagation stops as soon as a recomputed node
//!   reproduces its previous set, so the walked frontier shrinks with the
//!   residual instead of staying FUB-sized.
//!
//! Results are bit-identical to full sweeps, including [`SetId`]
//! numbering: a skipped node's annotation equals what a recompute would
//! produce (same inputs, same deterministic walk), so the full engine's
//! canonicalization of it is an arena no-op — new shared sets only ever
//! arise at recomputed-and-changed nodes, which both modes intern in the
//! same ascending FUB/topological order. The per-sweep
//! `changed_sets`/`max_delta` telemetry is identical too, because skipped
//! nodes contribute zero changes either way.
//!
//! [`UnionArena`]: crate::arena::UnionArena
//! [`BoundaryDeps`]: crate::walk::BoundaryDeps

use std::collections::HashMap;
use std::time::Instant;

use seqavf_netlist::graph::{FubId, NodeId};
use seqavf_obs::{Collector, FieldValue};

use crate::arena::{SetId, UnionArena};
use crate::walk::{BoundaryDeps, Propagator};

/// Minimum node count before [`relax_partitioned`] engages worker
/// threads. Below this the per-iteration spawn/join and shard
/// canonicalization overhead exceeds the work the walks split — BENCH_6
/// measured 8 threads at 0.46× and 32 threads at 0.40× of the sequential
/// wall time on the ~3k-node reference design — so small designs take the
/// sequential path regardless of the requested thread count. Same rule as
/// the flatten crossover in `seqavf-netlist`.
pub const RELAX_PARALLEL_WORK_THRESHOLD: usize = 20_000;

/// Per-iteration convergence telemetry.
#[derive(Debug, Clone, PartialEq)]
pub struct IterationStats {
    /// Node annotations whose term set changed this iteration.
    pub changed_sets: usize,
    /// Largest numeric pAVF movement across node annotations.
    pub max_delta: f64,
    /// FUBs walked this sweep (all of them in full-sweep mode; only the
    /// boundary-dirty ones in incremental mode).
    pub dirty_fubs: usize,
    /// FUBs skipped this sweep because no boundary value they read
    /// changed (always 0 in full-sweep mode).
    pub skipped_fubs: usize,
    /// Nodes actually recomputed this sweep (in either walk direction) —
    /// the work metric the incremental mode reduces. Full sweeps recompute
    /// every node of every FUB; incremental sweeps only the change cones
    /// inside dirty FUBs.
    pub walked_nodes: usize,
    /// Mean sequential-node `MIN(F, B)` value per FUB after this iteration
    /// (the paper's convergence plot, §6.1).
    pub fub_seq_mean: Vec<f64>,
    /// Worker threads this sweep actually engaged after the small-design
    /// clamp ([`RELAX_PARALLEL_WORK_THRESHOLD`]) — 1 when the design was
    /// too small to profit from the requested parallelism, the requested
    /// count otherwise. Results never depend on it; wall time does.
    pub effective_threads: usize,
    /// Wall-clock time this iteration took (walks, barrier, telemetry),
    /// in seconds.
    pub wall_seconds: f64,
}

/// Outcome of the relaxation loop.
#[derive(Debug, Clone, PartialEq)]
pub struct RelaxOutcome {
    /// Productive sweeps executed. When the loop converges, the final
    /// sweep merely *verifies* that nothing changes; it appears in
    /// [`RelaxOutcome::trace`] but is not counted here.
    pub iterations: usize,
    /// Whether a verification sweep observed `changed_sets == 0` before
    /// the iteration cap.
    pub converged: bool,
    /// Telemetry per sweep, including the final verification sweep.
    pub trace: Vec<IterationStats>,
}

impl RelaxOutcome {
    /// Total wall-clock time across all sweeps, in seconds.
    pub fn total_wall_seconds(&self) -> f64 {
        self.trace.iter().map(|s| s.wall_seconds).sum()
    }

    /// Mean wall-clock time per sweep, in seconds.
    pub fn mean_iteration_seconds(&self) -> f64 {
        if self.trace.is_empty() {
            0.0
        } else {
            self.total_wall_seconds() / self.trace.len() as f64
        }
    }

    /// Total nodes walked across all sweeps — the sweep-work metric the
    /// incremental mode reduces.
    pub fn total_walked_nodes(&self) -> usize {
        self.trace.iter().map(|s| s.walked_nodes).sum()
    }
}

/// The annotations one worker recomputed for one FUB: `(topo index,
/// shard-local set)` pairs in ascending topological order, one list per
/// walk direction. Nodes absent from both lists kept their previous
/// annotations (skipped by the change-cone rule).
struct FubAnnotations {
    fub: FubId,
    fwd: Vec<(u32, SetId)>,
    bwd: Vec<(u32, SetId)>,
}

/// One worker's share of an iteration: its shard arena, the recomputed
/// annotations of every FUB it walked, and how many nodes it actually
/// re-evaluated (in either direction).
struct ShardOutput {
    shard: UnionArena,
    fubs: Vec<FubAnnotations>,
    walked: usize,
}

/// The boundary-read annotations that changed at the last iteration
/// barrier, indexed by node. Workers consult these to decide whether a
/// cross-FUB read forces a recompute; [`mark_dirty`] refreshes every
/// boundary-read entry at each barrier (non-boundary entries stay false
/// forever).
struct ChangedMaps {
    fwd: Vec<bool>,
    bwd: Vec<bool>,
}

/// Reusable per-worker walk state, allocated once per relaxation run
/// instead of once per sweep: the node-count-sized scratch vectors plus
/// the shared→shard set-translation memo.
struct Scratch {
    local_f: Vec<SetId>,
    local_b: Vec<SetId>,
    /// Whether the node was recomputed (`*_fresh`) and whether that
    /// recompute produced a new set (`*_changed`) in the current sweep.
    /// Like the value vectors, entries are written before they are read
    /// within a FUB walk, so no per-sweep clearing is needed.
    f_fresh: Vec<bool>,
    b_fresh: Vec<bool>,
    f_changed: Vec<bool>,
    b_changed: Vec<bool>,
    /// Shared-arena `SetId` → shard `SetId`. Valid for one sweep only
    /// (every sweep builds a fresh shard arena), cleared at sweep start.
    memo: HashMap<SetId, SetId>,
}

impl Scratch {
    fn new(node_count: usize) -> Scratch {
        // The fill values are never read: within a FUB walk, `fub_topo`
        // guarantees same-FUB fan-in/fan-out entries were written earlier
        // in the same sweep, and cross-FUB edges never read the scratch.
        let top = UnionArena::new().top();
        Scratch {
            local_f: vec![top; node_count],
            local_b: vec![top; node_count],
            f_fresh: vec![false; node_count],
            b_fresh: vec![false; node_count],
            f_changed: vec![false; node_count],
            b_changed: vec![false; node_count],
            memo: HashMap::new(),
        }
    }
}

/// Translates a shared-arena set into the shard. Memoized per shared id,
/// so each distinct snapshot/source set is content-hashed at most once
/// per sweep instead of once per reading edge.
fn import(
    memo: &mut HashMap<SetId, SetId>,
    shard: &mut UnionArena,
    shared: &UnionArena,
    s: SetId,
) -> SetId {
    *memo
        .entry(s)
        .or_insert_with(|| shard.intern_terms(shared.terms(s)))
}

/// Walks a slice of FUBs against the iteration-start annotations,
/// interning every recomputed set into a private shard arena. Mirrors
/// [`Propagator::forward_pass`]/[`Propagator::backward_pass`] exactly,
/// including the conservative TOP for zero-fanin non-source nodes.
///
/// Unless `force_all` is set (full sweeps, and the flooding first sweep
/// of an incremental run), a node is re-evaluated only if one of its
/// reads moved: a cross-FUB boundary value flagged in `changed`, or a
/// same-FUB neighbour recomputed to a new set earlier in this sweep.
/// Skipped nodes keep their shared annotations — by purity of the walk,
/// recomputing them would reproduce those sets exactly.
///
/// The propagator's own `fwd`/`bwd` vectors serve directly as the Jacobi
/// snapshot: the barrier mutates them only after every worker of the
/// sweep has finished, so no per-iteration clone is needed.
fn walk_fubs_sharded(
    prop: &Propagator<'_>,
    fubs: &[FubId],
    scratch: &mut Scratch,
    changed: &ChangedMaps,
    force_all: bool,
) -> ShardOutput {
    let nl = prop.nl;
    let shared = &prop.arena;
    let (snap_f, snap_b) = (&prop.fwd, &prop.bwd);
    // Worst case this shard interns a set per direction per node it
    // walks; sizing from the shard's FUB topologies skips the rehashes.
    let shard_nodes: usize = fubs
        .iter()
        .map(|f| prop.prep.fub_topo[f.index()].len())
        .sum();
    let mut shard = UnionArena::with_capacity(shard_nodes);
    scratch.memo.clear();
    let Scratch {
        local_f,
        local_b,
        f_fresh,
        b_fresh,
        f_changed,
        b_changed,
        memo,
    } = scratch;
    let mut out = Vec::with_capacity(fubs.len());
    let mut walked = 0usize;
    for &fub in fubs {
        let order = &prop.prep.fub_topo[fub.index()];
        let mut fwd_new: Vec<(u32, SetId)> = Vec::new();
        let mut bwd_new: Vec<(u32, SetId)> = Vec::new();
        for (k, &node) in order.iter().enumerate() {
            let i = node.index();
            let needs = force_all
                || (prop.prep.fwd_source[i].is_none()
                    && nl.fanin(node).iter().any(|&f| {
                        if nl.fub(f) == fub {
                            f_changed[f.index()]
                        } else {
                            changed.fwd[f.index()]
                        }
                    }));
            if !needs {
                f_fresh[i] = false;
                f_changed[i] = false;
                continue;
            }
            let v = if let Some(s) = prop.prep.fwd_source[i] {
                import(memo, &mut shard, shared, s)
            } else if nl.fanin(node).is_empty() {
                shard.top()
            } else {
                let mut acc = shard.empty();
                for &f in nl.fanin(node) {
                    let v = if nl.fub(f) == fub && f_fresh[f.index()] {
                        local_f[f.index()]
                    } else {
                        import(memo, &mut shard, shared, snap_f[f.index()])
                    };
                    acc = shard.union2(acc, v);
                }
                acc
            };
            local_f[i] = v;
            f_fresh[i] = true;
            f_changed[i] = v != import(memo, &mut shard, shared, snap_f[i]);
            fwd_new.push((k as u32, v));
        }
        for (k, &node) in order.iter().enumerate().rev() {
            let i = node.index();
            let needs = force_all
                || (prop.prep.bwd_source[i].is_none()
                    && nl.fanout(node).iter().any(|&m| {
                        prop.prep.bwd_contrib[m.index()].is_none()
                            && if nl.fub(m) == fub {
                                b_changed[m.index()]
                            } else {
                                changed.bwd[m.index()]
                            }
                    }));
            if needs {
                let v = if let Some(s) = prop.prep.bwd_source[i] {
                    import(memo, &mut shard, shared, s)
                } else {
                    let mut acc = shard.empty();
                    for &m in nl.fanout(node) {
                        let v = if let Some(c) = prop.prep.bwd_contrib[m.index()] {
                            import(memo, &mut shard, shared, c)
                        } else if nl.fub(m) == fub && b_fresh[m.index()] {
                            local_b[m.index()]
                        } else {
                            import(memo, &mut shard, shared, snap_b[m.index()])
                        };
                        acc = shard.union2(acc, v);
                    }
                    acc
                };
                local_b[i] = v;
                b_fresh[i] = true;
                b_changed[i] = v != import(memo, &mut shard, shared, snap_b[i]);
                bwd_new.push((k as u32, v));
            } else {
                b_fresh[i] = false;
                b_changed[i] = false;
            }
            if f_fresh[i] || b_fresh[i] {
                walked += 1;
            }
        }
        // Collected in reverse topological order; the barrier interns in
        // ascending order to match the full engine's id assignment.
        bwd_new.reverse();
        out.push(FubAnnotations {
            fub,
            fwd: fwd_new,
            bwd: bwd_new,
        });
    }
    ShardOutput {
        shard,
        fubs: out,
        walked,
    }
}

/// Longest-processing-time assignment of FUBs to `workers` groups,
/// weighted by per-FUB topo size: biggest FUB first, each to the
/// least-loaded worker. Keeps sweeps balanced even when the incremental
/// dirty set is a skewed slice of the design. Only the grouping depends
/// on this choice — the barrier canonicalizes in ascending FUB order
/// regardless, so results are unaffected.
fn lpt_partition(fubs: &[FubId], fub_topo: &[Vec<NodeId>], workers: usize) -> Vec<Vec<FubId>> {
    let mut order: Vec<FubId> = fubs.to_vec();
    order.sort_by_key(|&f| (std::cmp::Reverse(fub_topo[f.index()].len()), f.index()));
    let mut loads = vec![0usize; workers];
    let mut parts: Vec<Vec<FubId>> = vec![Vec::new(); workers];
    for f in order {
        let w = (0..workers)
            .min_by_key(|&w| (loads[w], w))
            .expect("at least one worker");
        parts[w].push(f);
        loads[w] += fub_topo[f.index()].len().max(1);
    }
    parts.retain(|p| !p.is_empty());
    parts
}

/// One relaxation sweep over `active` (which must be ascending by FUB id):
/// walk the FUBs concurrently when `threads > 1`, then canonicalize the
/// shard results into the shared arena at the iteration barrier, diffing
/// each recomputed node against its previous annotation in the same pass.
///
/// Returns `(changed_sets, max_delta, recomputed_nodes)`.
fn sharded_sweep(
    prop: &mut Propagator<'_>,
    active: &[FubId],
    threads: usize,
    scratch: &mut [Scratch],
    values: &[f64],
    changed_maps: &ChangedMaps,
    force_all: bool,
) -> (usize, f64, usize) {
    if active.is_empty() {
        return (0, 0.0, 0);
    }
    let workers = threads.max(1).min(active.len());
    let outputs: Vec<ShardOutput> = if workers == 1 {
        vec![walk_fubs_sharded(
            prop,
            active,
            &mut scratch[0],
            changed_maps,
            force_all,
        )]
    } else {
        let parts = lpt_partition(active, &prop.prep.fub_topo, workers);
        let prop_ref: &Propagator<'_> = prop;
        std::thread::scope(|s| {
            let handles: Vec<_> = parts
                .iter()
                .zip(scratch.iter_mut())
                .map(|(part, scr)| {
                    s.spawn(move || walk_fubs_sharded(prop_ref, part, scr, changed_maps, force_all))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("relaxation worker panicked"))
                .collect()
        })
    };
    // Iteration barrier: canonicalize shard-local sets into the shared
    // arena in FUB order, nodes in topological order. The interning order
    // — and with it every canonical SetId — is fully deterministic and
    // independent of how FUBs were distributed over workers. Nodes the
    // change-cone rule skipped kept their previous (already canonical)
    // annotations and need no interning at all.
    let mut where_is: Vec<(u32, u32)> = vec![(u32::MAX, 0); prop.nl.fub_count()];
    for (oi, o) in outputs.iter().enumerate() {
        for (fi, fa) in o.fubs.iter().enumerate() {
            where_is[fa.fub.index()] = (oi as u32, fi as u32);
        }
    }
    let mut changed = 0usize;
    let mut max_delta = 0.0f64;
    for &fub in active {
        let (oi, fi) = where_is[fub.index()];
        let o = &outputs[oi as usize];
        let fa = &o.fubs[fi as usize];
        debug_assert_eq!(fa.fub, fub);
        let order = &prop.prep.fub_topo[fub.index()];
        for &(k, s) in &fa.fwd {
            let i = order[k as usize].index();
            let new = prop.arena.intern_terms(o.shard.terms(s));
            if new != prop.fwd[i] {
                changed += 1;
                let d = (prop.arena.eval(new, values) - prop.arena.eval(prop.fwd[i], values)).abs();
                max_delta = max_delta.max(d);
                prop.fwd[i] = new;
            }
        }
        for &(k, s) in &fa.bwd {
            let i = order[k as usize].index();
            let new = prop.arena.intern_terms(o.shard.terms(s));
            if new != prop.bwd[i] {
                changed += 1;
                let d = (prop.arena.eval(new, values) - prop.arena.eval(prop.bwd[i], values)).abs();
                max_delta = max_delta.max(d);
                prop.bwd[i] = new;
            }
        }
    }
    let walked = outputs.iter().map(|o| o.walked).sum();
    (changed, max_delta, walked)
}

/// Diffs the boundary-read annotations against their sparse snapshots,
/// updating the snapshots in place, refreshing the per-node changed maps
/// the workers' change-cone rule reads, and marking every consumer FUB of
/// a changed value dirty. This is the §5.2 observation that recomputation
/// is confined to the cone downstream of a changed FUBIO value.
fn mark_dirty(
    boundary: &BoundaryDeps,
    fwd: &[SetId],
    bwd: &[SetId],
    snap_f: &mut [SetId],
    snap_b: &mut [SetId],
    changed_maps: &mut ChangedMaps,
    dirty: &mut [bool],
) {
    for (k, &node) in boundary.fwd_reads.iter().enumerate() {
        let cur = fwd[node.index()];
        let moved = cur != snap_f[k];
        changed_maps.fwd[node.index()] = moved;
        if moved {
            snap_f[k] = cur;
            for &f in boundary.fwd_consumers_of(k) {
                dirty[f.index()] = true;
            }
        }
    }
    for (k, &node) in boundary.bwd_reads.iter().enumerate() {
        let cur = bwd[node.index()];
        let moved = cur != snap_b[k];
        changed_maps.bwd[node.index()] = moved;
        if moved {
            snap_b[k] = cur;
            for &f in boundary.bwd_consumers_of(k) {
                dirty[f.index()] = true;
            }
        }
    }
}

/// Runs partitioned relaxation to a structural fixpoint, fanning the
/// per-FUB walks of each iteration out over `threads` workers with
/// per-worker arena shards (see the module docs). Any thread count yields
/// bit-identical annotations and `SetId` numbering.
///
/// With `incremental` set, each sweep walks only the FUBs whose
/// cross-partition boundary reads changed in the previous sweep; clean
/// FUBs keep their annotations untouched. Annotations, `SetId` numbering,
/// and per-sweep `changed_sets`/`max_delta` telemetry are bit-identical
/// to full sweeps — only the work (`walked_nodes`) shrinks.
///
/// `values` supplies term values for the numeric telemetry only; the
/// propagation itself is symbolic and independent of them.
///
/// Every sweep is reported to `obs` as a `relax.sweep` span sharing the
/// single per-sweep clock measurement with [`IterationStats`], plus the
/// `relax.changed_sets` monotonic counter; collection never affects the
/// computed annotations.
///
/// `threads` is a *ceiling*, not a demand: designs below
/// [`RELAX_PARALLEL_WORK_THRESHOLD`] nodes run sequentially regardless,
/// because the spawn/canonicalize overhead inverts the speedup there.
/// The decision is visible as [`IterationStats::effective_threads`] and
/// the `relax.sweep` span's `threads`/`requested_threads` fields.
/// Equivalence tests and benchmarks that must exercise the parallel
/// machinery on small designs use [`relax_partitioned_exact`].
pub fn relax_partitioned(
    prop: &mut Propagator<'_>,
    values: &[f64],
    max_iterations: usize,
    threads: usize,
    incremental: bool,
    obs: &Collector,
) -> RelaxOutcome {
    let effective = if threads > 1 && prop.nl.node_count() < RELAX_PARALLEL_WORK_THRESHOLD {
        1
    } else {
        threads
    };
    relax_partitioned_inner(
        prop,
        values,
        max_iterations,
        threads,
        effective,
        incremental,
        None,
        obs,
    )
}

/// Warm-started partitioned relaxation: the caller has already seeded
/// `prop.fwd`/`prop.bwd` with a previously converged fixpoint (see
/// `crate::fixpoint`), and `seed_dirty` flags exactly the FUBs whose
/// content changed since that fixpoint was captured. The first sweep
/// force-walks only those FUBs instead of flooding the whole design;
/// from there the ordinary cross-FUB dirty propagation takes over, so
/// work stays proportional to the edit's change cone.
///
/// Correctness leans on the same invariant as within-run incremental
/// sweeps: a skipped node's annotation is reproduced exactly by
/// recomputing it as long as none of its reads moved. Seeded annotations
/// are the converged values of the *previous* run, so they satisfy that
/// invariant for every FUB whose content — including its cross-FUB
/// wiring, captured by `Netlist::fub_digests` — is unchanged; any value
/// that does move is diffed at the iteration barrier and its consumers
/// re-walked. The converged annotations (and therefore the resolved
/// AVFs) are bit-identical to a cold solve; only `SetId` numbering and
/// the work telemetry differ.
///
/// Always incremental (a warm start without change-cone tracking would
/// silently recompute everything); subject to the same small-design
/// thread clamp as [`relax_partitioned`].
pub fn relax_partitioned_warm(
    prop: &mut Propagator<'_>,
    values: &[f64],
    max_iterations: usize,
    threads: usize,
    seed_dirty: &[bool],
    obs: &Collector,
) -> RelaxOutcome {
    let effective = if threads > 1 && prop.nl.node_count() < RELAX_PARALLEL_WORK_THRESHOLD {
        1
    } else {
        threads
    };
    relax_partitioned_inner(
        prop,
        values,
        max_iterations,
        threads,
        effective,
        true,
        Some(seed_dirty),
        obs,
    )
}

/// [`relax_partitioned_warm`] without the small-design thread clamp, for
/// equivalence tests that must drive the sharded warm path on designs
/// below the crossover.
pub fn relax_partitioned_warm_exact(
    prop: &mut Propagator<'_>,
    values: &[f64],
    max_iterations: usize,
    threads: usize,
    seed_dirty: &[bool],
    obs: &Collector,
) -> RelaxOutcome {
    relax_partitioned_inner(
        prop,
        values,
        max_iterations,
        threads,
        threads,
        true,
        Some(seed_dirty),
        obs,
    )
}

/// [`relax_partitioned`] without the small-design clamp: engages exactly
/// `threads` workers whatever the node count. Bit-identical results either
/// way — this exists so thread-equivalence tests and benchmark curves can
/// drive the sharded path on designs below the crossover.
pub fn relax_partitioned_exact(
    prop: &mut Propagator<'_>,
    values: &[f64],
    max_iterations: usize,
    threads: usize,
    incremental: bool,
    obs: &Collector,
) -> RelaxOutcome {
    relax_partitioned_inner(
        prop,
        values,
        max_iterations,
        threads,
        threads,
        incremental,
        None,
        obs,
    )
}

#[allow(clippy::too_many_arguments)]
fn relax_partitioned_inner(
    prop: &mut Propagator<'_>,
    values: &[f64],
    max_iterations: usize,
    requested_threads: usize,
    threads: usize,
    incremental: bool,
    warm_dirty: Option<&[bool]>,
    obs: &Collector,
) -> RelaxOutcome {
    let fub_count = prop.nl.fub_count();
    let all_fubs: Vec<FubId> = prop.nl.fub_ids().collect();
    let workers = threads.max(1).min(fub_count.max(1));
    let mut scratch: Vec<Scratch> = (0..workers)
        .map(|_| Scratch::new(prop.nl.node_count()))
        .collect();
    // Sparse FUBIO snapshots: only the boundary-read annotations persist
    // across iterations (for the dirty diff), never the full 2×node_count
    // vectors.
    let mut snap_f: Vec<SetId> = prop
        .prep
        .boundary
        .fwd_reads
        .iter()
        .map(|n| prop.fwd[n.index()])
        .collect();
    let mut snap_b: Vec<SetId> = prop
        .prep
        .boundary
        .bwd_reads
        .iter()
        .map(|n| prop.bwd[n.index()])
        .collect();
    // Cold solves flood every FUB on the first sweep; a warm start seeds
    // the dirty vector with just the FUBs whose digests moved, so iter 0
    // force-walks only the edit's footprint.
    let mut dirty = match warm_dirty {
        Some(seed) => {
            debug_assert_eq!(seed.len(), fub_count);
            seed.to_vec()
        }
        None => vec![true; fub_count],
    };
    let mut changed_maps = ChangedMaps {
        fwd: vec![false; prop.nl.node_count()],
        bwd: vec![false; prop.nl.node_count()],
    };

    let mut trace = Vec::new();
    let mut converged = false;
    for iter in 0..max_iterations {
        let t0 = Instant::now();
        let active: Vec<FubId> = if incremental {
            all_fubs
                .iter()
                .copied()
                .filter(|f| dirty[f.index()])
                .collect()
        } else {
            all_fubs.clone()
        };
        let dirty_fubs = active.len();
        let skipped_fubs = fub_count - dirty_fubs;
        // The first sweep floods every node (annotations start at the
        // conservative defaults); afterwards the change-cone rule applies.
        let force_all = !incremental || iter == 0;
        let (changed, max_delta, walked_nodes) = sharded_sweep(
            prop,
            &active,
            threads,
            &mut scratch,
            values,
            &changed_maps,
            force_all,
        );
        if incremental {
            dirty.fill(false);
            mark_dirty(
                &prop.prep.boundary,
                &prop.fwd,
                &prop.bwd,
                &mut snap_f,
                &mut snap_b,
                &mut changed_maps,
                &mut dirty,
            );
        }
        let wall = t0.elapsed();
        obs.record_span(
            "relax.sweep",
            t0,
            wall,
            vec![
                ("iter", FieldValue::U64(iter as u64)),
                ("changed_sets", FieldValue::U64(changed as u64)),
                ("max_delta", FieldValue::F64(max_delta)),
                ("threads", FieldValue::U64(threads as u64)),
                (
                    "requested_threads",
                    FieldValue::U64(requested_threads as u64),
                ),
                ("dirty_fubs", FieldValue::U64(dirty_fubs as u64)),
                ("skipped_fubs", FieldValue::U64(skipped_fubs as u64)),
            ],
        );
        obs.count("relax.changed_sets", changed as u64);
        obs.count("relax.walked_nodes", walked_nodes as u64);
        trace.push(IterationStats {
            changed_sets: changed,
            max_delta,
            dirty_fubs,
            skipped_fubs,
            walked_nodes,
            fub_seq_mean: fub_seq_means(prop, values),
            effective_threads: threads.max(1),
            wall_seconds: wall.as_secs_f64(),
        });
        if changed == 0 {
            converged = true;
            break;
        }
    }
    // The sweep that observes no change is a verification, not a
    // productive iteration; report only the sweeps that moved values.
    let iterations = if converged {
        trace.len().saturating_sub(1)
    } else {
        trace.len()
    };
    RelaxOutcome {
        iterations,
        converged,
        trace,
    }
}

/// Runs the unpartitioned global analysis: one down walk and one up walk
/// over the whole design. Because the loop-cut graph is acyclic, this
/// computes the same fixpoint the partitioned relaxation converges to —
/// but the claim is *verified*, not assumed: a second sweep re-walks the
/// design and the outcome reports convergence only if it changed nothing.
pub fn solve_global(prop: &mut Propagator<'_>, values: &[f64], obs: &Collector) -> RelaxOutcome {
    let fub_count = prop.nl.fub_count();
    let mut trace = Vec::new();
    for sweep in 0..2 {
        let t0 = Instant::now();
        let snap_f = prop.fwd.clone();
        let snap_b = prop.bwd.clone();
        prop.forward_pass(None, None);
        prop.backward_pass(None, None);
        let (changed, max_delta) = diff_stats(prop, &snap_f, &snap_b, values);
        let wall = t0.elapsed();
        obs.record_span(
            "relax.sweep",
            t0,
            wall,
            vec![
                ("iter", FieldValue::U64(sweep as u64)),
                ("changed_sets", FieldValue::U64(changed as u64)),
                ("max_delta", FieldValue::F64(max_delta)),
                ("threads", FieldValue::U64(1)),
                ("requested_threads", FieldValue::U64(1)),
                ("dirty_fubs", FieldValue::U64(fub_count as u64)),
                ("skipped_fubs", FieldValue::U64(0)),
            ],
        );
        obs.count("relax.changed_sets", changed as u64);
        obs.count("relax.walked_nodes", prop.nl.node_count() as u64);
        trace.push(IterationStats {
            changed_sets: changed,
            max_delta,
            dirty_fubs: fub_count,
            skipped_fubs: 0,
            walked_nodes: prop.nl.node_count(),
            fub_seq_mean: fub_seq_means(prop, values),
            effective_threads: 1,
            wall_seconds: wall.as_secs_f64(),
        });
    }
    let converged = trace.last().is_some_and(|s| s.changed_sets == 0);
    let iterations = if converged {
        trace.len().saturating_sub(1)
    } else {
        trace.len()
    };
    RelaxOutcome {
        iterations,
        converged,
        trace,
    }
}

/// Counts annotation changes against a snapshot and the largest numeric
/// movement under `values` (global mode only; the partitioned barrier
/// diffs inline while canonicalizing).
fn diff_stats(
    prop: &Propagator<'_>,
    snap_f: &[SetId],
    snap_b: &[SetId],
    values: &[f64],
) -> (usize, f64) {
    let mut changed = 0usize;
    let mut max_delta = 0.0f64;
    for i in 0..prop.nl.node_count() {
        if prop.fwd[i] != snap_f[i] {
            changed += 1;
            let d =
                (prop.arena.eval(prop.fwd[i], values) - prop.arena.eval(snap_f[i], values)).abs();
            max_delta = max_delta.max(d);
        }
        if prop.bwd[i] != snap_b[i] {
            changed += 1;
            let d =
                (prop.arena.eval(prop.bwd[i], values) - prop.arena.eval(snap_b[i], values)).abs();
            max_delta = max_delta.max(d);
        }
    }
    (changed, max_delta)
}

/// Mean `MIN(F, B)` over the sequential nodes of each FUB. Evaluates the
/// arena once (`eval_all`) and then reads per-node values in O(1) —
/// bit-identical to per-node `eval`, which computes the same capped sum.
fn fub_seq_means(prop: &Propagator<'_>, values: &[f64]) -> Vec<f64> {
    let nl = prop.nl;
    let set_vals = prop.arena.eval_all(values);
    let mut sums = vec![0.0f64; nl.fub_count()];
    let mut counts = vec![0usize; nl.fub_count()];
    for id in nl.seq_nodes() {
        let i = id.index();
        let v = set_vals[prop.fwd[i].index()].min(set_vals[prop.bwd[i].index()]);
        let f = nl.fub(id).index();
        sums[f] += v;
        counts[f] += 1;
    }
    sums.iter()
        .zip(&counts)
        .map(|(s, &c)| if c == 0 { 0.0 } else { s / c as f64 })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arena::UnionArena;
    use crate::classify::classify;
    use crate::mapping::StructureMapping;
    use crate::walk::prepare;
    use seqavf_netlist::flatten::parse_netlist;
    use seqavf_netlist::graph::Netlist;
    use seqavf_netlist::scc::find_loops;

    /// Three FUBs chained: a value must cross two partition boundaries, so
    /// partitioned relaxation needs at least three iterations to converge.
    const CHAIN: &str = r"
.design chain
.fub a
  .struct s1 1
  .flop q s1[0]
  .output o q
.endfub
.fub b
  .flop r a.o
  .output o r
.endfub
.fub c
  .struct s2 1
  .flop t b.o
  .sw s2[0] t
.endfub
.end
";

    /// Four FUBs: `a` fans out to `b` and `c`; `d` is fully isolated.
    const FANOUT: &str = r"
.design fanout
.fub a
  .struct s1 1
  .flop q s1[0]
  .output o q
.endfub
.fub b
  .struct s2 1
  .flop r a.o
  .sw s2[0] r
.endfub
.fub c
  .struct s3 1
  .flop t a.o
  .sw s3[0] t
.endfub
.fub d
  .struct s4 1
  .flop u s4[0]
  .sw s4[0] u
.endfub
.end
";

    fn propagator(text: &str) -> (Netlist, Propagator<'static>) {
        let nl = Box::leak(Box::new(parse_netlist(text).unwrap()));
        let loops = find_loops(nl);
        let roles = classify(nl, &loops, &["creg".to_owned()]);
        let mut arena = UnionArena::new();
        let prep = prepare(nl, roles, &StructureMapping::new(), &mut arena);
        (nl.clone(), Propagator::new(nl, prep, arena))
    }

    fn default_values(prop: &Propagator<'_>) -> Vec<f64> {
        prop.prep
            .terms
            .values(&|_| Some((0.25, 0.5)), &|_| Some(0.3), 1.0, 1.0)
    }

    #[test]
    fn partitioned_matches_global() {
        let (nl, mut p1) = propagator(CHAIN);
        let mut p2 = p1.clone();
        let values = default_values(&p1);
        let out_part = relax_partitioned(&mut p1, &values, 20, 1, true, &Collector::disabled());
        let out_glob = solve_global(&mut p2, &values, &Collector::disabled());
        assert!(out_part.converged);
        assert!(out_glob.converged);
        for id in nl.nodes() {
            let i = id.index();
            let a = p1.arena.eval(p1.fwd[i], &values);
            let b = p2.arena.eval(p2.fwd[i], &values);
            assert!((a - b).abs() < 1e-12, "fwd mismatch at {}", nl.name(id));
            let a = p1.arena.eval(p1.bwd[i], &values);
            let b = p2.arena.eval(p2.bwd[i], &values);
            assert!((a - b).abs() < 1e-12, "bwd mismatch at {}", nl.name(id));
        }
    }

    #[test]
    fn incremental_is_bit_identical_to_full_sweeps() {
        for text in [CHAIN, FANOUT] {
            for threads in [1usize, 2, 8] {
                let (_, p0) = propagator(text);
                let values = default_values(&p0);
                let mut p_full = p0.clone();
                let mut p_inc = p0.clone();
                // `_exact` so the sharded parallel path actually runs on
                // these tiny designs despite the small-design clamp.
                let full = relax_partitioned_exact(
                    &mut p_full,
                    &values,
                    20,
                    threads,
                    false,
                    &Collector::disabled(),
                );
                let inc = relax_partitioned_exact(
                    &mut p_inc,
                    &values,
                    20,
                    threads,
                    true,
                    &Collector::disabled(),
                );
                // Identical annotations, SetId numbering, arena contents,
                // iteration counts, and per-sweep change telemetry.
                assert_eq!(p_full.fwd, p_inc.fwd, "threads={threads}");
                assert_eq!(p_full.bwd, p_inc.bwd, "threads={threads}");
                assert_eq!(p_full.arena.len(), p_inc.arena.len(), "threads={threads}");
                assert_eq!(full.iterations, inc.iterations);
                assert_eq!(full.converged, inc.converged);
                assert_eq!(full.trace.len(), inc.trace.len());
                for (a, b) in full.trace.iter().zip(&inc.trace) {
                    assert_eq!(a.changed_sets, b.changed_sets);
                    assert_eq!(a.max_delta, b.max_delta);
                    assert_eq!(a.fub_seq_mean, b.fub_seq_mean);
                }
                // The incremental run did strictly less sweep work.
                assert!(inc.total_walked_nodes() <= full.total_walked_nodes());
            }
        }
    }

    #[test]
    fn incremental_skips_clean_fubs() {
        let (nl, mut p) = propagator(CHAIN);
        let values = default_values(&p);
        let out = relax_partitioned(&mut p, &values, 20, 1, true, &Collector::disabled());
        assert!(out.converged);
        // The first sweep floods everything…
        assert_eq!(out.trace[0].dirty_fubs, nl.fub_count());
        assert_eq!(out.trace[0].skipped_fubs, 0);
        // …and at least one later sweep skips FUBs whose boundary reads
        // were clean.
        assert!(out.trace[1..].iter().any(|s| s.skipped_fubs > 0));
        // The verification sweep observes an already-converged dirty set.
        let last = out.trace.last().unwrap();
        assert_eq!(last.changed_sets, 0);
    }

    #[test]
    fn single_fub_perturbation_marks_exactly_dependent_fubs() {
        let (nl, mut p) = propagator(FANOUT);
        let values = default_values(&p);
        let out = relax_partitioned(&mut p, &values, 20, 1, true, &Collector::disabled());
        assert!(out.converged);
        let boundary = &p.prep.boundary;
        let fub = |name: &str| nl.fub(nl.lookup(name).unwrap());
        // The isolated FUB `d` neither exposes nor consumes boundary
        // values.
        for k in 0..boundary.fwd_reads.len() {
            assert_ne!(nl.fub(boundary.fwd_reads[k]), fub("d.u"));
            assert!(!boundary.fwd_consumers_of(k).contains(&fub("d.u")));
        }
        for k in 0..boundary.bwd_reads.len() {
            assert_ne!(nl.fub(boundary.bwd_reads[k]), fub("d.u"));
            assert!(!boundary.bwd_consumers_of(k).contains(&fub("d.u")));
        }
        // Take converged sparse snapshots: diffing marks nothing dirty.
        let mut snap_f: Vec<SetId> = boundary
            .fwd_reads
            .iter()
            .map(|n| p.fwd[n.index()])
            .collect();
        let mut snap_b: Vec<SetId> = boundary
            .bwd_reads
            .iter()
            .map(|n| p.bwd[n.index()])
            .collect();
        let mut dirty = vec![false; nl.fub_count()];
        let mut maps = ChangedMaps {
            fwd: vec![false; nl.node_count()],
            bwd: vec![false; nl.node_count()],
        };
        mark_dirty(
            boundary,
            &p.fwd,
            &p.bwd,
            &mut snap_f,
            &mut snap_b,
            &mut maps,
            &mut dirty,
        );
        assert!(dirty.iter().all(|&d| !d), "converged state must be clean");
        assert!(maps.fwd.iter().chain(&maps.bwd).all(|&c| !c));
        // Perturb the forward annotation `a` exposes at `a.o`: exactly the
        // dependent FUBs `b` and `c` become dirty.
        let a_o = nl.lookup("a.o").unwrap();
        let k = boundary
            .fwd_reads
            .iter()
            .position(|&n| n == a_o)
            .expect("a.o is read across the partition");
        snap_f[k] = p.arena.top();
        assert_ne!(snap_f[k], p.fwd[a_o.index()]);
        mark_dirty(
            boundary,
            &p.fwd,
            &p.bwd,
            &mut snap_f,
            &mut snap_b,
            &mut maps,
            &mut dirty,
        );
        // The changed map flags exactly the perturbed boundary read.
        assert!(maps.fwd[a_o.index()]);
        assert_eq!(maps.fwd.iter().filter(|&&c| c).count(), 1);
        let dirty_fubs: Vec<usize> = dirty
            .iter()
            .enumerate()
            .filter(|(_, &d)| d)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(
            dirty_fubs,
            vec![fub("b.r").index(), fub("c.t").index()],
            "perturbing a.o must dirty exactly its consumers"
        );
    }

    #[test]
    fn chain_needs_multiple_iterations() {
        let (_, mut p) = propagator(CHAIN);
        let values = default_values(&p);
        let out = relax_partitioned(&mut p, &values, 20, 1, true, &Collector::disabled());
        assert!(out.converged);
        assert!(
            out.iterations >= 3,
            "a two-boundary crossing needs ≥3 iterations, got {}",
            out.iterations
        );
        // The verification sweep is traced but not counted.
        assert_eq!(out.trace.len(), out.iterations + 1);
    }

    #[test]
    fn iteration_cap_respected() {
        let (_, mut p) = propagator(CHAIN);
        let values = default_values(&p);
        let out = relax_partitioned(&mut p, &values, 1, 1, true, &Collector::disabled());
        assert_eq!(out.iterations, 1);
        assert!(!out.converged);
    }

    #[test]
    fn deltas_shrink_to_zero() {
        let (_, mut p) = propagator(CHAIN);
        let values = default_values(&p);
        let out = relax_partitioned(&mut p, &values, 20, 1, true, &Collector::disabled());
        let last = out.trace.last().unwrap();
        assert_eq!(last.changed_sets, 0);
        assert_eq!(last.max_delta, 0.0);
        // Change counts are non-increasing after the initial flood.
        let first = &out.trace[0];
        assert!(first.changed_sets > 0);
    }

    #[test]
    fn fub_means_tracked_per_iteration() {
        let (nl, mut p) = propagator(CHAIN);
        let values = default_values(&p);
        let out = relax_partitioned(&mut p, &values, 20, 1, true, &Collector::disabled());
        for s in &out.trace {
            assert_eq!(s.fub_seq_mean.len(), nl.fub_count());
            for &m in &s.fub_seq_mean {
                assert!((0.0..=1.0).contains(&m));
            }
        }
    }

    #[test]
    fn thread_counts_are_bit_identical() {
        for incremental in [false, true] {
            let (_, p0) = propagator(CHAIN);
            let values = default_values(&p0);
            let mut runs = Vec::new();
            for threads in [1usize, 2, 3, 8] {
                let mut p = p0.clone();
                // `_exact` so the multi-thread variants genuinely shard:
                // the clamped entry point would run CHAIN sequentially.
                let out = relax_partitioned_exact(
                    &mut p,
                    &values,
                    20,
                    threads,
                    incremental,
                    &Collector::disabled(),
                );
                assert!(out.converged, "threads={threads}");
                runs.push((threads, p, out));
            }
            let (_, base, base_out) = &runs[0];
            for (threads, p, out) in &runs[1..] {
                // Identical SetId annotations, arena contents, and telemetry
                // counters — the sharded engine is deterministic in the thread
                // count by construction.
                assert_eq!(&base.fwd, &p.fwd, "fwd SetIds differ at threads={threads}");
                assert_eq!(&base.bwd, &p.bwd, "bwd SetIds differ at threads={threads}");
                assert_eq!(base.arena.len(), p.arena.len(), "threads={threads}");
                assert_eq!(base_out.iterations, out.iterations);
                for (a, b) in base_out.trace.iter().zip(&out.trace) {
                    assert_eq!(a.changed_sets, b.changed_sets);
                    assert_eq!(a.max_delta, b.max_delta);
                    assert_eq!(a.fub_seq_mean, b.fub_seq_mean);
                    assert_eq!(a.dirty_fubs, b.dirty_fubs);
                    assert_eq!(a.walked_nodes, b.walked_nodes);
                }
            }
        }
    }

    #[test]
    fn lpt_balances_loads() {
        let (nl, p) = propagator(CHAIN);
        let fubs: Vec<FubId> = nl.fub_ids().collect();
        let parts = lpt_partition(&fubs, &p.prep.fub_topo, 2);
        // Every FUB appears exactly once across the groups.
        let mut seen: Vec<FubId> = parts.iter().flatten().copied().collect();
        seen.sort_by_key(|f| f.index());
        assert_eq!(seen, fubs);
        // No group holds everything when more than one worker is asked for.
        assert!(parts.len() > 1);
        assert!(parts.iter().all(|p| !p.is_empty()));
    }

    #[test]
    fn small_designs_clamp_to_sequential_and_record_the_decision() {
        let (nl, p0) = propagator(CHAIN);
        assert!(nl.node_count() < RELAX_PARALLEL_WORK_THRESHOLD);
        let values = default_values(&p0);
        // The clamped entry point drops to 1 worker below the crossover…
        let mut p = p0.clone();
        let clamped = relax_partitioned(&mut p, &values, 20, 8, true, &Collector::disabled());
        assert!(clamped.trace.iter().all(|s| s.effective_threads == 1));
        // …the exact variant honors the request…
        let mut p_exact = p0.clone();
        let exact =
            relax_partitioned_exact(&mut p_exact, &values, 20, 8, true, &Collector::disabled());
        assert!(exact.trace.iter().all(|s| s.effective_threads == 8));
        // …and both produce bit-identical annotations and telemetry.
        assert_eq!(p.fwd, p_exact.fwd);
        assert_eq!(p.bwd, p_exact.bwd);
        assert_eq!(p.arena.len(), p_exact.arena.len());
        assert_eq!(clamped.iterations, exact.iterations);
        // Sequential requests pass through the clamp untouched.
        let mut p1 = p0.clone();
        let seq = relax_partitioned(&mut p1, &values, 20, 1, true, &Collector::disabled());
        assert!(seq.trace.iter().all(|s| s.effective_threads == 1));
    }

    #[test]
    fn clamp_decision_lands_in_the_sweep_trace() {
        let (_, mut p) = propagator(CHAIN);
        let values = default_values(&p);
        let obs = Collector::new();
        relax_partitioned(&mut p, &values, 20, 8, true, &obs);
        let spans = obs.spans();
        let sweeps: Vec<_> = spans.iter().filter(|s| s.name == "relax.sweep").collect();
        assert!(!sweeps.is_empty());
        for s in sweeps {
            let field = |key: &str| {
                s.fields
                    .iter()
                    .find(|(k, _)| *k == key)
                    .unwrap_or_else(|| panic!("missing field {key}"))
                    .1
                    .clone()
            };
            assert_eq!(field("threads"), FieldValue::U64(1));
            assert_eq!(field("requested_threads"), FieldValue::U64(8));
        }
    }

    #[test]
    fn wall_time_is_recorded_per_iteration() {
        let (_, mut p) = propagator(CHAIN);
        let values = default_values(&p);
        let out = relax_partitioned_exact(&mut p, &values, 20, 2, true, &Collector::disabled());
        assert!(!out.trace.is_empty());
        for s in &out.trace {
            assert!(s.wall_seconds >= 0.0);
        }
        let total = out.total_wall_seconds();
        assert!(total >= 0.0);
        assert!(out.mean_iteration_seconds() <= total + 1e-15);
    }

    #[test]
    fn global_telemetry_is_honest() {
        let (nl, mut p) = propagator(CHAIN);
        let values = default_values(&p);
        let out = solve_global(&mut p, &values, &Collector::disabled());
        // The first sweep moves annotations off the conservative TOP; the
        // second verifies the fixpoint rather than assuming it.
        assert_eq!(out.trace.len(), 2);
        assert!(out.trace[0].changed_sets > 0);
        assert_eq!(out.trace.last().unwrap().changed_sets, 0);
        assert!(out.converged);
        assert_eq!(out.iterations, 1);
        for s in &out.trace {
            assert_eq!(s.dirty_fubs, nl.fub_count());
            assert_eq!(s.skipped_fubs, 0);
            assert_eq!(s.walked_nodes, nl.node_count());
        }
    }
}
