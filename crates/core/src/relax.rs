//! The FUB-partitioned relaxation loop (§5.2).
//!
//! "We chose to deal with this situation using a relaxation approach that
//! calculates the AVF for the entire design repeatedly over several
//! iterations, refining the AVF values each iteration. … During subsequent
//! analysis iterations (defined to be one up and one down walk through the
//! netlist for each FUB), the merged FUBIO information is used as an input
//! to the analysis. … any walk can only cross one partition during each
//! iteration."
//!
//! Each iteration snapshots the forward/backward annotations (the FUBIO
//! merge of the previous iteration), re-walks every FUB against the
//! snapshot, and measures both structural change (how many node annotations
//! got a new term set) and numeric change (the largest pAVF movement under
//! a given term-value vector). Convergence is declared when nothing changes
//! structurally — an exact, input-independent criterion available because
//! the propagation is symbolic.
//!
//! # Parallelism: sharded arenas with a canonicalizing barrier
//!
//! Because every cross-FUB edge reads from the iteration-start snapshot
//! (Jacobi relaxation), the per-FUB walks of one iteration are data
//! parallel. The obstacle to running them concurrently is the hash-consing
//! [`UnionArena`]: walks intern new term sets, and a shared arena would
//! need locking on the hot path.
//!
//! [`relax_partitioned`] instead gives each worker a private *shard* arena.
//! A worker walks its FUBs interning locally (importing snapshot and
//! source sets by term content), and at the end of the iteration the main
//! thread canonicalizes every node's final term set into the shared arena
//! in deterministic FUB/topological order. Canonical [`SetId`]s therefore
//! depend only on the netlist and inputs — never on the thread count — so
//! the parallel engine is bit-identical to the sequential one (which runs
//! the very same shard machinery inline). Shard-local intermediate sets
//! (partial unions) die with the shard and never pollute the shared arena.
//!
//! [`UnionArena`]: crate::arena::UnionArena

use std::time::Instant;

use seqavf_netlist::graph::FubId;
use seqavf_obs::{Collector, FieldValue};

use crate::arena::{SetId, UnionArena};
use crate::walk::Propagator;

/// Per-iteration convergence telemetry.
#[derive(Debug, Clone, PartialEq)]
pub struct IterationStats {
    /// Node annotations whose term set changed this iteration.
    pub changed_sets: usize,
    /// Largest numeric pAVF movement across node annotations.
    pub max_delta: f64,
    /// Mean sequential-node `MIN(F, B)` value per FUB after this iteration
    /// (the paper's convergence plot, §6.1).
    pub fub_seq_mean: Vec<f64>,
    /// Wall-clock time this iteration took (walks, barrier, telemetry),
    /// in seconds.
    pub wall_seconds: f64,
}

/// Outcome of the relaxation loop.
#[derive(Debug, Clone, PartialEq)]
pub struct RelaxOutcome {
    /// Productive sweeps executed. When the loop converges, the final
    /// sweep merely *verifies* that nothing changes; it appears in
    /// [`RelaxOutcome::trace`] but is not counted here.
    pub iterations: usize,
    /// Whether a verification sweep observed `changed_sets == 0` before
    /// the iteration cap.
    pub converged: bool,
    /// Telemetry per sweep, including the final verification sweep.
    pub trace: Vec<IterationStats>,
}

impl RelaxOutcome {
    /// Total wall-clock time across all sweeps, in seconds.
    pub fn total_wall_seconds(&self) -> f64 {
        self.trace.iter().map(|s| s.wall_seconds).sum()
    }

    /// Mean wall-clock time per sweep, in seconds.
    pub fn mean_iteration_seconds(&self) -> f64 {
        if self.trace.is_empty() {
            0.0
        } else {
            self.total_wall_seconds() / self.trace.len() as f64
        }
    }
}

/// The annotations one worker computed for one FUB: shard-local set ids,
/// parallel to `prep.fub_topo[fub]`.
struct FubAnnotations {
    fub: FubId,
    fwd: Vec<SetId>,
    bwd: Vec<SetId>,
}

/// One worker's share of an iteration: its shard arena plus the
/// annotations of every FUB it walked.
struct ShardOutput {
    shard: UnionArena,
    fubs: Vec<FubAnnotations>,
}

/// Walks a slice of FUBs against the iteration-start snapshot, interning
/// every set into a private shard arena. Mirrors
/// [`Propagator::forward_pass`]/[`Propagator::backward_pass`] exactly,
/// including the conservative TOP for zero-fanin non-source nodes.
fn walk_fubs_sharded(
    prop: &Propagator<'_>,
    fubs: &[FubId],
    snap_f: &[SetId],
    snap_b: &[SetId],
) -> ShardOutput {
    let nl = prop.nl;
    let shared = &prop.arena;
    let mut shard = UnionArena::new();
    // Scratch for in-FUB values. Entries are only read for same-FUB
    // fan-ins/fan-outs, which `fub_topo` guarantees were written earlier
    // in the walk (it preserves the loop-cut topological order).
    let n = nl.node_count();
    let mut local_f: Vec<SetId> = vec![shard.top(); n];
    let mut local_b: Vec<SetId> = vec![shard.top(); n];
    let mut out = Vec::with_capacity(fubs.len());
    for &fub in fubs {
        let order = &prop.prep.fub_topo[fub.index()];
        for &node in order {
            let i = node.index();
            local_f[i] = if let Some(s) = prop.prep.fwd_source[i] {
                shard.intern_terms(shared.terms(s))
            } else if nl.fanin(node).is_empty() {
                shard.top()
            } else {
                let mut acc = shard.empty();
                for &f in nl.fanin(node) {
                    let v = if nl.fub(f) == fub {
                        local_f[f.index()]
                    } else {
                        shard.intern_terms(shared.terms(snap_f[f.index()]))
                    };
                    acc = shard.union2(acc, v);
                }
                acc
            };
        }
        for &node in order.iter().rev() {
            let i = node.index();
            local_b[i] = if let Some(s) = prop.prep.bwd_source[i] {
                shard.intern_terms(shared.terms(s))
            } else {
                let mut acc = shard.empty();
                for &m in nl.fanout(node) {
                    let v = if let Some(c) = prop.prep.bwd_contrib[m.index()] {
                        shard.intern_terms(shared.terms(c))
                    } else if nl.fub(m) == fub {
                        local_b[m.index()]
                    } else {
                        shard.intern_terms(shared.terms(snap_b[m.index()]))
                    };
                    acc = shard.union2(acc, v);
                }
                acc
            };
        }
        out.push(FubAnnotations {
            fub,
            fwd: order.iter().map(|&nn| local_f[nn.index()]).collect(),
            bwd: order.iter().map(|&nn| local_b[nn.index()]).collect(),
        });
    }
    ShardOutput { shard, fubs: out }
}

/// One relaxation sweep: walk every FUB (concurrently when `threads > 1`)
/// against the given snapshot, then canonicalize the shard results into
/// the shared arena at the iteration barrier.
fn sharded_sweep(prop: &mut Propagator<'_>, snap_f: &[SetId], snap_b: &[SetId], threads: usize) {
    let nl = prop.nl;
    let fub_ids: Vec<FubId> = nl.fub_ids().collect();
    let threads = threads.max(1).min(fub_ids.len().max(1));
    let outputs: Vec<ShardOutput> = if threads == 1 {
        vec![walk_fubs_sharded(prop, &fub_ids, snap_f, snap_b)]
    } else {
        let chunk = fub_ids.len().div_ceil(threads);
        let prop_ref: &Propagator<'_> = prop;
        std::thread::scope(|s| {
            let handles: Vec<_> = fub_ids
                .chunks(chunk)
                .map(|part| s.spawn(move || walk_fubs_sharded(prop_ref, part, snap_f, snap_b)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("relaxation worker panicked"))
                .collect()
        })
    };
    // Iteration barrier: canonicalize shard-local sets into the shared
    // arena in FUB order, nodes in topological order. The interning order
    // — and with it every canonical SetId — is fully deterministic and
    // independent of how FUBs were distributed over workers.
    let mut where_is: Vec<(usize, usize)> = vec![(0, 0); nl.fub_count()];
    for (oi, o) in outputs.iter().enumerate() {
        for (fi, fa) in o.fubs.iter().enumerate() {
            where_is[fa.fub.index()] = (oi, fi);
        }
    }
    for fub in nl.fub_ids() {
        let (oi, fi) = where_is[fub.index()];
        let o = &outputs[oi];
        let fa = &o.fubs[fi];
        debug_assert_eq!(fa.fub, fub);
        let order = &prop.prep.fub_topo[fub.index()];
        for (k, &node) in order.iter().enumerate() {
            prop.fwd[node.index()] = prop.arena.intern_terms(o.shard.terms(fa.fwd[k]));
        }
        for (k, &node) in order.iter().enumerate() {
            prop.bwd[node.index()] = prop.arena.intern_terms(o.shard.terms(fa.bwd[k]));
        }
    }
}

/// Counts annotation changes against a snapshot and the largest numeric
/// movement under `values`.
fn diff_stats(
    prop: &Propagator<'_>,
    snap_f: &[SetId],
    snap_b: &[SetId],
    values: &[f64],
) -> (usize, f64) {
    let mut changed = 0usize;
    let mut max_delta = 0.0f64;
    for i in 0..prop.nl.node_count() {
        if prop.fwd[i] != snap_f[i] {
            changed += 1;
            let d =
                (prop.arena.eval(prop.fwd[i], values) - prop.arena.eval(snap_f[i], values)).abs();
            max_delta = max_delta.max(d);
        }
        if prop.bwd[i] != snap_b[i] {
            changed += 1;
            let d =
                (prop.arena.eval(prop.bwd[i], values) - prop.arena.eval(snap_b[i], values)).abs();
            max_delta = max_delta.max(d);
        }
    }
    (changed, max_delta)
}

/// Runs partitioned relaxation to a structural fixpoint, fanning the
/// per-FUB walks of each iteration out over `threads` workers with
/// per-worker arena shards (see the module docs). Any thread count yields
/// bit-identical annotations and `SetId` numbering.
///
/// `values` supplies term values for the numeric telemetry only; the
/// propagation itself is symbolic and independent of them.
///
/// Every sweep is reported to `obs` as a `relax.sweep` span sharing the
/// single per-sweep clock measurement with [`IterationStats`], plus the
/// `relax.changed_sets` monotonic counter; collection never affects the
/// computed annotations.
pub fn relax_partitioned(
    prop: &mut Propagator<'_>,
    values: &[f64],
    max_iterations: usize,
    threads: usize,
    obs: &Collector,
) -> RelaxOutcome {
    let mut trace = Vec::new();
    let mut converged = false;
    for iter in 0..max_iterations {
        let t0 = Instant::now();
        // FUBIO snapshot: the merged boundary values from the previous
        // iteration (initially the conservative TOP annotations).
        let snap_f = prop.fwd.clone();
        let snap_b = prop.bwd.clone();
        sharded_sweep(prop, &snap_f, &snap_b, threads);
        let (changed, max_delta) = diff_stats(prop, &snap_f, &snap_b, values);
        let wall = t0.elapsed();
        obs.record_span(
            "relax.sweep",
            t0,
            wall,
            vec![
                ("iter", FieldValue::U64(iter as u64)),
                ("changed_sets", FieldValue::U64(changed as u64)),
                ("max_delta", FieldValue::F64(max_delta)),
                ("threads", FieldValue::U64(threads as u64)),
            ],
        );
        obs.count("relax.changed_sets", changed as u64);
        trace.push(IterationStats {
            changed_sets: changed,
            max_delta,
            fub_seq_mean: fub_seq_means(prop, values),
            wall_seconds: wall.as_secs_f64(),
        });
        if changed == 0 {
            converged = true;
            break;
        }
    }
    // The sweep that observes no change is a verification, not a
    // productive iteration; report only the sweeps that moved values.
    let iterations = if converged {
        trace.len().saturating_sub(1)
    } else {
        trace.len()
    };
    RelaxOutcome {
        iterations,
        converged,
        trace,
    }
}

/// Runs the unpartitioned global analysis: one down walk and one up walk
/// over the whole design. Because the loop-cut graph is acyclic, this
/// computes the same fixpoint the partitioned relaxation converges to —
/// but the claim is *verified*, not assumed: a second sweep re-walks the
/// design and the outcome reports convergence only if it changed nothing.
pub fn solve_global(prop: &mut Propagator<'_>, values: &[f64], obs: &Collector) -> RelaxOutcome {
    let mut trace = Vec::new();
    for sweep in 0..2 {
        let t0 = Instant::now();
        let snap_f = prop.fwd.clone();
        let snap_b = prop.bwd.clone();
        prop.forward_pass(None, None);
        prop.backward_pass(None, None);
        let (changed, max_delta) = diff_stats(prop, &snap_f, &snap_b, values);
        let wall = t0.elapsed();
        obs.record_span(
            "relax.sweep",
            t0,
            wall,
            vec![
                ("iter", FieldValue::U64(sweep as u64)),
                ("changed_sets", FieldValue::U64(changed as u64)),
                ("max_delta", FieldValue::F64(max_delta)),
                ("threads", FieldValue::U64(1)),
            ],
        );
        obs.count("relax.changed_sets", changed as u64);
        trace.push(IterationStats {
            changed_sets: changed,
            max_delta,
            fub_seq_mean: fub_seq_means(prop, values),
            wall_seconds: wall.as_secs_f64(),
        });
    }
    let converged = trace.last().is_some_and(|s| s.changed_sets == 0);
    let iterations = if converged {
        trace.len().saturating_sub(1)
    } else {
        trace.len()
    };
    RelaxOutcome {
        iterations,
        converged,
        trace,
    }
}

/// Mean `MIN(F, B)` over the sequential nodes of each FUB.
fn fub_seq_means(prop: &Propagator<'_>, values: &[f64]) -> Vec<f64> {
    let nl = prop.nl;
    let mut sums = vec![0.0f64; nl.fub_count()];
    let mut counts = vec![0usize; nl.fub_count()];
    for id in nl.seq_nodes() {
        let i = id.index();
        let v = prop
            .arena
            .eval(prop.fwd[i], values)
            .min(prop.arena.eval(prop.bwd[i], values));
        let f = nl.fub(id).index();
        sums[f] += v;
        counts[f] += 1;
    }
    sums.iter()
        .zip(&counts)
        .map(|(s, &c)| if c == 0 { 0.0 } else { s / c as f64 })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arena::UnionArena;
    use crate::classify::classify;
    use crate::mapping::StructureMapping;
    use crate::walk::prepare;
    use seqavf_netlist::flatten::parse_netlist;
    use seqavf_netlist::graph::Netlist;
    use seqavf_netlist::scc::find_loops;

    /// Three FUBs chained: a value must cross two partition boundaries, so
    /// partitioned relaxation needs at least three iterations to converge.
    const CHAIN: &str = r"
.design chain
.fub a
  .struct s1 1
  .flop q s1[0]
  .output o q
.endfub
.fub b
  .flop r a.o
  .output o r
.endfub
.fub c
  .struct s2 1
  .flop t b.o
  .sw s2[0] t
.endfub
.end
";

    fn propagator(text: &str) -> (Netlist, Propagator<'static>) {
        let nl = Box::leak(Box::new(parse_netlist(text).unwrap()));
        let loops = find_loops(nl);
        let roles = classify(nl, &loops, &["creg".to_owned()]);
        let mut arena = UnionArena::new();
        let prep = prepare(nl, roles, &StructureMapping::new(), &mut arena);
        (nl.clone(), Propagator::new(nl, prep, arena))
    }

    fn default_values(prop: &Propagator<'_>) -> Vec<f64> {
        prop.prep
            .terms
            .values(&|_| Some((0.25, 0.5)), &|_| Some(0.3), 1.0, 1.0)
    }

    #[test]
    fn partitioned_matches_global() {
        let (nl, mut p1) = propagator(CHAIN);
        let mut p2 = p1.clone();
        let values = default_values(&p1);
        let out_part = relax_partitioned(&mut p1, &values, 20, 1, &Collector::disabled());
        let out_glob = solve_global(&mut p2, &values, &Collector::disabled());
        assert!(out_part.converged);
        assert!(out_glob.converged);
        for id in nl.nodes() {
            let i = id.index();
            let a = p1.arena.eval(p1.fwd[i], &values);
            let b = p2.arena.eval(p2.fwd[i], &values);
            assert!((a - b).abs() < 1e-12, "fwd mismatch at {}", nl.name(id));
            let a = p1.arena.eval(p1.bwd[i], &values);
            let b = p2.arena.eval(p2.bwd[i], &values);
            assert!((a - b).abs() < 1e-12, "bwd mismatch at {}", nl.name(id));
        }
    }

    #[test]
    fn chain_needs_multiple_iterations() {
        let (_, mut p) = propagator(CHAIN);
        let values = default_values(&p);
        let out = relax_partitioned(&mut p, &values, 20, 1, &Collector::disabled());
        assert!(out.converged);
        assert!(
            out.iterations >= 3,
            "a two-boundary crossing needs ≥3 iterations, got {}",
            out.iterations
        );
        // The verification sweep is traced but not counted.
        assert_eq!(out.trace.len(), out.iterations + 1);
    }

    #[test]
    fn iteration_cap_respected() {
        let (_, mut p) = propagator(CHAIN);
        let values = default_values(&p);
        let out = relax_partitioned(&mut p, &values, 1, 1, &Collector::disabled());
        assert_eq!(out.iterations, 1);
        assert!(!out.converged);
    }

    #[test]
    fn deltas_shrink_to_zero() {
        let (_, mut p) = propagator(CHAIN);
        let values = default_values(&p);
        let out = relax_partitioned(&mut p, &values, 20, 1, &Collector::disabled());
        let last = out.trace.last().unwrap();
        assert_eq!(last.changed_sets, 0);
        assert_eq!(last.max_delta, 0.0);
        // Change counts are non-increasing after the initial flood.
        let first = &out.trace[0];
        assert!(first.changed_sets > 0);
    }

    #[test]
    fn fub_means_tracked_per_iteration() {
        let (nl, mut p) = propagator(CHAIN);
        let values = default_values(&p);
        let out = relax_partitioned(&mut p, &values, 20, 1, &Collector::disabled());
        for s in &out.trace {
            assert_eq!(s.fub_seq_mean.len(), nl.fub_count());
            for &m in &s.fub_seq_mean {
                assert!((0.0..=1.0).contains(&m));
            }
        }
    }

    #[test]
    fn thread_counts_are_bit_identical() {
        let (_, p0) = propagator(CHAIN);
        let values = default_values(&p0);
        let mut runs = Vec::new();
        for threads in [1usize, 2, 3, 8] {
            let mut p = p0.clone();
            let out = relax_partitioned(&mut p, &values, 20, threads, &Collector::disabled());
            assert!(out.converged, "threads={threads}");
            runs.push((threads, p, out));
        }
        let (_, base, base_out) = &runs[0];
        for (threads, p, out) in &runs[1..] {
            // Identical SetId annotations, arena contents, and telemetry
            // counters — the sharded engine is deterministic in the thread
            // count by construction.
            assert_eq!(&base.fwd, &p.fwd, "fwd SetIds differ at threads={threads}");
            assert_eq!(&base.bwd, &p.bwd, "bwd SetIds differ at threads={threads}");
            assert_eq!(base.arena.len(), p.arena.len(), "threads={threads}");
            assert_eq!(base_out.iterations, out.iterations);
            for (a, b) in base_out.trace.iter().zip(&out.trace) {
                assert_eq!(a.changed_sets, b.changed_sets);
                assert_eq!(a.max_delta, b.max_delta);
                assert_eq!(a.fub_seq_mean, b.fub_seq_mean);
            }
        }
    }

    #[test]
    fn wall_time_is_recorded_per_iteration() {
        let (_, mut p) = propagator(CHAIN);
        let values = default_values(&p);
        let out = relax_partitioned(&mut p, &values, 20, 2, &Collector::disabled());
        assert!(!out.trace.is_empty());
        for s in &out.trace {
            assert!(s.wall_seconds >= 0.0);
        }
        let total = out.total_wall_seconds();
        assert!(total >= 0.0);
        assert!(out.mean_iteration_seconds() <= total + 1e-15);
    }

    #[test]
    fn global_telemetry_is_honest() {
        let (_, mut p) = propagator(CHAIN);
        let values = default_values(&p);
        let out = solve_global(&mut p, &values, &Collector::disabled());
        // The first sweep moves annotations off the conservative TOP; the
        // second verifies the fixpoint rather than assuming it.
        assert_eq!(out.trace.len(), 2);
        assert!(out.trace[0].changed_sets > 0);
        assert_eq!(out.trace.last().unwrap().changed_sets, 0);
        assert!(out.converged);
        assert_eq!(out.iterations, 1);
    }
}
