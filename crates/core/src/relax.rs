//! The FUB-partitioned relaxation loop (§5.2).
//!
//! "We chose to deal with this situation using a relaxation approach that
//! calculates the AVF for the entire design repeatedly over several
//! iterations, refining the AVF values each iteration. … During subsequent
//! analysis iterations (defined to be one up and one down walk through the
//! netlist for each FUB), the merged FUBIO information is used as an input
//! to the analysis. … any walk can only cross one partition during each
//! iteration."
//!
//! Each iteration snapshots the forward/backward annotations (the FUBIO
//! merge of the previous iteration), re-walks every FUB against the
//! snapshot, and measures both structural change (how many node annotations
//! got a new term set) and numeric change (the largest pAVF movement under
//! a given term-value vector). Convergence is declared when nothing changes
//! structurally — an exact, input-independent criterion available because
//! the propagation is symbolic.

use crate::walk::Propagator;

/// Per-iteration convergence telemetry.
#[derive(Debug, Clone, PartialEq)]
pub struct IterationStats {
    /// Node annotations whose term set changed this iteration.
    pub changed_sets: usize,
    /// Largest numeric pAVF movement across node annotations.
    pub max_delta: f64,
    /// Mean sequential-node `MIN(F, B)` value per FUB after this iteration
    /// (the paper's convergence plot, §6.1).
    pub fub_seq_mean: Vec<f64>,
}

/// Outcome of the relaxation loop.
#[derive(Debug, Clone, PartialEq)]
pub struct RelaxOutcome {
    /// Iterations executed.
    pub iterations: usize,
    /// Whether the loop converged before hitting the iteration cap.
    pub converged: bool,
    /// Telemetry per iteration.
    pub trace: Vec<IterationStats>,
}

/// Runs partitioned relaxation to a structural fixpoint.
///
/// `values` supplies term values for the numeric telemetry only; the
/// propagation itself is symbolic and independent of them.
pub fn relax_partitioned(
    prop: &mut Propagator<'_>,
    values: &[f64],
    max_iterations: usize,
) -> RelaxOutcome {
    let nl = prop.nl;
    let mut trace = Vec::new();
    let mut converged = false;
    for _iter in 0..max_iterations {
        // FUBIO snapshot: the merged boundary values from the previous
        // iteration (initially the conservative TOP annotations).
        let snap_f = prop.fwd.clone();
        let snap_b = prop.bwd.clone();
        for fub in nl.fub_ids() {
            prop.forward_pass(Some(fub), Some(&snap_f));
            prop.backward_pass(Some(fub), Some(&snap_b));
        }
        // Telemetry.
        let mut changed = 0usize;
        let mut max_delta = 0.0f64;
        for i in 0..nl.node_count() {
            if prop.fwd[i] != snap_f[i] {
                changed += 1;
                let d = (prop.arena.eval(prop.fwd[i], values)
                    - prop.arena.eval(snap_f[i], values))
                .abs();
                max_delta = max_delta.max(d);
            }
            if prop.bwd[i] != snap_b[i] {
                changed += 1;
                let d = (prop.arena.eval(prop.bwd[i], values)
                    - prop.arena.eval(snap_b[i], values))
                .abs();
                max_delta = max_delta.max(d);
            }
        }
        trace.push(IterationStats {
            changed_sets: changed,
            max_delta,
            fub_seq_mean: fub_seq_means(prop, values),
        });
        if changed == 0 {
            converged = true;
            break;
        }
    }
    RelaxOutcome {
        iterations: trace.len(),
        converged,
        trace,
    }
}

/// Runs the unpartitioned global analysis: one down walk and one up walk
/// over the whole design. Because the loop-cut graph is acyclic, this
/// computes the same fixpoint the partitioned relaxation converges to.
pub fn solve_global(prop: &mut Propagator<'_>, values: &[f64]) -> RelaxOutcome {
    prop.forward_pass(None, None);
    prop.backward_pass(None, None);
    let stats = IterationStats {
        changed_sets: 0,
        max_delta: 0.0,
        fub_seq_mean: fub_seq_means(prop, values),
    };
    RelaxOutcome {
        iterations: 1,
        converged: true,
        trace: vec![stats],
    }
}

/// Mean `MIN(F, B)` over the sequential nodes of each FUB.
fn fub_seq_means(prop: &Propagator<'_>, values: &[f64]) -> Vec<f64> {
    let nl = prop.nl;
    let mut sums = vec![0.0f64; nl.fub_count()];
    let mut counts = vec![0usize; nl.fub_count()];
    for id in nl.seq_nodes() {
        let i = id.index();
        let v = prop
            .arena
            .eval(prop.fwd[i], values)
            .min(prop.arena.eval(prop.bwd[i], values));
        let f = nl.fub(id).index();
        sums[f] += v;
        counts[f] += 1;
    }
    sums.iter()
        .zip(&counts)
        .map(|(s, &c)| if c == 0 { 0.0 } else { s / c as f64 })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arena::UnionArena;
    use crate::classify::classify;
    use crate::mapping::StructureMapping;
    use crate::walk::prepare;
    use seqavf_netlist::flatten::parse_netlist;
    use seqavf_netlist::graph::Netlist;
    use seqavf_netlist::scc::find_loops;

    /// Three FUBs chained: a value must cross two partition boundaries, so
    /// partitioned relaxation needs at least three iterations to converge.
    const CHAIN: &str = r"
.design chain
.fub a
  .struct s1 1
  .flop q s1[0]
  .output o q
.endfub
.fub b
  .flop r a.o
  .output o r
.endfub
.fub c
  .struct s2 1
  .flop t b.o
  .sw s2[0] t
.endfub
.end
";

    fn propagator(text: &str) -> (Netlist, Propagator<'static>) {
        let nl = Box::leak(Box::new(parse_netlist(text).unwrap()));
        let loops = find_loops(nl);
        let roles = classify(nl, &loops, &["creg".to_owned()]);
        let mut arena = UnionArena::new();
        let prep = prepare(nl, roles, &StructureMapping::new(), &mut arena);
        (nl.clone(), Propagator::new(nl, prep, arena))
    }

    fn default_values(prop: &Propagator<'_>) -> Vec<f64> {
        prop.prep
            .terms
            .values(&|_| Some((0.25, 0.5)), &|_| Some(0.3), 1.0, 1.0)
    }

    #[test]
    fn partitioned_matches_global() {
        let (nl, mut p1) = propagator(CHAIN);
        let mut p2 = p1.clone();
        let values = default_values(&p1);
        let out_part = relax_partitioned(&mut p1, &values, 20);
        let out_glob = solve_global(&mut p2, &values);
        assert!(out_part.converged);
        assert!(out_glob.converged);
        for id in nl.nodes() {
            let i = id.index();
            let a = p1.arena.eval(p1.fwd[i], &values);
            let b = p2.arena.eval(p2.fwd[i], &values);
            assert!((a - b).abs() < 1e-12, "fwd mismatch at {}", nl.name(id));
            let a = p1.arena.eval(p1.bwd[i], &values);
            let b = p2.arena.eval(p2.bwd[i], &values);
            assert!((a - b).abs() < 1e-12, "bwd mismatch at {}", nl.name(id));
        }
    }

    #[test]
    fn chain_needs_multiple_iterations() {
        let (_, mut p) = propagator(CHAIN);
        let values = default_values(&p);
        let out = relax_partitioned(&mut p, &values, 20);
        assert!(out.converged);
        assert!(
            out.iterations >= 3,
            "a two-boundary crossing needs ≥3 iterations, got {}",
            out.iterations
        );
    }

    #[test]
    fn iteration_cap_respected() {
        let (_, mut p) = propagator(CHAIN);
        let values = default_values(&p);
        let out = relax_partitioned(&mut p, &values, 1);
        assert_eq!(out.iterations, 1);
        assert!(!out.converged);
    }

    #[test]
    fn deltas_shrink_to_zero() {
        let (_, mut p) = propagator(CHAIN);
        let values = default_values(&p);
        let out = relax_partitioned(&mut p, &values, 20);
        let last = out.trace.last().unwrap();
        assert_eq!(last.changed_sets, 0);
        assert_eq!(last.max_delta, 0.0);
        // Change counts are non-increasing after the initial flood.
        let first = &out.trace[0];
        assert!(first.changed_sets > 0);
    }

    #[test]
    fn fub_means_tracked_per_iteration() {
        let (nl, mut p) = propagator(CHAIN);
        let values = default_values(&p);
        let out = relax_partitioned(&mut p, &values, 20);
        for s in &out.trace {
            assert_eq!(s.fub_seq_mean.len(), nl.fub_count());
            for &m in &s.fub_seq_mean {
                assert!((0.0..=1.0).contains(&m));
            }
        }
    }
}
