//! Property tests pinning the incremental DAG patch to the cold
//! compiler: for random synthetic designs and random one-FUB,
//! several-FUB, and whole-design gate edits, patching the previous
//! revision's compiled sweep DAG ([`CompiledSweep::patch`]) must
//! evaluate **bit-identically** (`f64::to_bits`) to a cold
//! [`CompiledSweep::compile`] of the edited design — at 1, 2, and 8
//! threads — and any violated precondition (corrupt layout, mismatched
//! fixpoint, stale mask) must degrade to an `Err` the caller turns into
//! a full rebuild, never a panic and never a wrong DAG.

use proptest::prelude::*;

use seqavf_core::compile::CompiledSweep;
use seqavf_core::engine::{SartConfig, SartEngine, WarmStatus};
use seqavf_core::fixpoint::StoredFixpoint;
use seqavf_core::mapping::{PavfInputs, StructureMapping};
use seqavf_netlist::exlif;
use seqavf_netlist::flatten;
use seqavf_netlist::graph::Netlist;
use seqavf_netlist::synth::{generate, SynthConfig};

/// The base revision: a synthetic design's EXLIF text, its structure
/// mapping, and a workload table.
fn base_revision(seed: u64) -> (String, StructureMapping, PavfInputs) {
    let design = generate(&SynthConfig::xeon_like(seed));
    let text = exlif::write(&design.netlist);
    let mapping = StructureMapping::from_pairs(design.meta.structure_map.clone());
    let mut inputs = PavfInputs::new();
    inputs.set_port("uops_executed", 0.21, 0.34);
    (text, mapping, inputs)
}

/// Flips `picks`-selected and/or gates in the EXLIF text. Returns `None`
/// if the design has no gates to flip.
fn flip_gates(text: &str, picks: &[usize]) -> Option<String> {
    let mut lines: Vec<String> = text.lines().map(str::to_owned).collect();
    let gate_lines: Vec<usize> = lines
        .iter()
        .enumerate()
        .filter(|(_, l)| {
            let t = l.trim_start();
            t.starts_with(".gate and ") || t.starts_with(".gate or ")
        })
        .map(|(i, _)| i)
        .collect();
    if gate_lines.is_empty() {
        return None;
    }
    for &p in picks {
        let i = gate_lines[p % gate_lines.len()];
        lines[i] = if lines[i].trim_start().starts_with(".gate and ") {
            lines[i].replacen(".gate and ", ".gate or ", 1)
        } else {
            lines[i].replacen(".gate or ", ".gate and ", 1)
        };
    }
    Some(lines.join("\n") + "\n")
}

/// Flips every and/or gate — the full-rewrite perturbation.
fn flip_all_gates(text: &str) -> String {
    let n = text
        .lines()
        .filter(|l| {
            let t = l.trim_start();
            t.starts_with(".gate and ") || t.starts_with(".gate or ")
        })
        .count();
    flip_gates(text, &(0..n).collect::<Vec<_>>()).expect("synthetic design has gates")
}

/// Cold-solves the base revision and returns its compiled DAG plus the
/// captured fixpoint artifact — the persisted state a later edit patches
/// against.
fn compile_base(
    text: &str,
    mapping: &StructureMapping,
    inputs: &PavfInputs,
) -> (CompiledSweep, StoredFixpoint) {
    let nl = flatten::parse_netlist(text).unwrap();
    let engine = SartEngine::new(&nl, mapping, SartConfig::default());
    let result = engine.run(inputs);
    let stored = engine
        .capture_fixpoint(&result)
        .expect("base revision must converge");
    (CompiledSweep::compile(&result, &nl), stored)
}

/// The stored artifact's FUB layout: name and node count in FUB-id order.
fn layout(stored: &StoredFixpoint) -> Vec<(&str, usize)> {
    stored
        .fubs
        .iter()
        .map(|f| (f.name.as_str(), f.fwd.len()))
        .collect()
}

/// Patches `old` for the edited design at `threads` and asserts the
/// result evaluates bit-identically to a cold recompile, for the base
/// table and a couple of shifted workload tables. Returns
/// `(ops_patched, total_new_ops)`.
fn assert_patch_matches_cold(
    old: &CompiledSweep,
    stored: &StoredFixpoint,
    nl: &Netlist,
    mapping: &StructureMapping,
    inputs: &PavfInputs,
    threads: usize,
) -> (usize, usize) {
    let config = SartConfig {
        threads,
        ..SartConfig::default()
    };
    let engine = SartEngine::new(nl, mapping, config);
    let cold = engine.run_exact(inputs);
    let (warm, status, clean) = engine.run_warm_patch_exact(inputs, stored);
    let clean = match status {
        WarmStatus::Warm { .. } => clean.expect("warm solve must produce a clean mask"),
        WarmStatus::Cold(reason) => panic!("warm path refused at {threads} threads: {reason}"),
    };
    let (patched, stats) = old
        .patch(&warm, nl, &layout(stored), &clean)
        .expect("patch preconditions hold for a gate edit");
    let reference = CompiledSweep::compile(&cold, nl);
    let mut tables = vec![inputs.clone()];
    for shift in [0.07, 0.41] {
        let mut t = PavfInputs::new();
        t.set_port("uops_executed", 0.21 + shift, 0.34);
        tables.push(t);
    }
    for t in &tables {
        let a = reference.evaluate(t);
        let b = patched.evaluate(t);
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(&b).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "patched AVF diverges from cold recompile at node {i}, {threads} threads"
            );
        }
    }
    // And through the threaded batch evaluator the sweep driver uses.
    let many_ref = reference.evaluate_many(&tables, threads);
    let many_pat = patched.evaluate_many(&tables, threads);
    for (a, b) in many_ref.iter().zip(&many_pat) {
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }
    let total_ops = patched.stats().sum_ops + patched.stats().min_ops;
    (stats.nodes_patched(), total_ops)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// The headline contract: patched DAG ≡ cold recompile, bit for bit,
    /// for arbitrary gate edits at every thread count.
    #[test]
    fn patched_dag_is_bit_identical_to_cold_recompile(
        seed in 0u64..3,
        picks in proptest::collection::vec(any::<usize>(), 1..6),
    ) {
        let (base, mapping, inputs) = base_revision(seed);
        let (old, stored) = compile_base(&base, &mapping, &inputs);
        let edited = flip_gates(&base, &picks).expect("synthetic design has gates");
        prop_assume!(edited != base);
        let nl = flatten::parse_netlist(&edited).unwrap();
        for threads in [1usize, 2, 8] {
            assert_patch_matches_cold(&old, &stored, &nl, &mapping, &inputs, threads);
        }
    }

    /// A corrupted old-FUB layout or a stale clean mask must be rejected
    /// with `Err` — never a panic, never an `Ok` patch.
    #[test]
    fn corrupt_layout_degrades_to_full_rebuild(
        seed in 0u64..2,
        victim in any::<usize>(),
        grow in 1usize..5,
    ) {
        let (base, mapping, inputs) = base_revision(seed);
        let (old, stored) = compile_base(&base, &mapping, &inputs);
        let edited = flip_gates(&base, &[victim]).expect("synthetic design has gates");
        prop_assume!(edited != base);
        let nl = flatten::parse_netlist(&edited).unwrap();
        let engine = SartEngine::new(&nl, &mapping, SartConfig::default());
        let (warm, status, clean) = engine.run_warm_patch_exact(&inputs, &stored);
        prop_assume!(matches!(status, WarmStatus::Warm { .. }));
        let clean = clean.unwrap();

        // Layout that no longer covers the old DAG (a FUB grew).
        let mut grown = layout(&stored);
        let v = victim % grown.len();
        grown[v].1 += grow;
        prop_assert!(old.patch(&warm, &nl, &grown, &clean).is_err());

        // Layout with a FUB the netlist has never heard of, where a
        // clean FUB's name should be.
        let mut renamed = layout(&stored);
        renamed[clean.iter().position(|&c| c).unwrap_or(0)].0 = "no-such-fub";
        prop_assert!(old.patch(&warm, &nl, &renamed, &clean).is_err());

        // A mask of the wrong arity (fixpoint from some other design).
        let mut short = clean.clone();
        short.pop();
        prop_assert!(old.patch(&warm, &nl, &layout(&stored), &short).is_err());
    }
}

/// One-FUB edit: the patch touches strictly fewer ops than the DAG holds
/// — the proportional-to-edit claim — at every thread count.
#[test]
fn one_fub_edit_patches_strictly_less_than_the_dag() {
    let (base, mapping, inputs) = base_revision(5);
    let (old, stored) = compile_base(&base, &mapping, &inputs);
    let edited = flip_gates(&base, &[0]).unwrap();
    assert_ne!(edited, base);
    let nl = flatten::parse_netlist(&edited).unwrap();
    for threads in [1usize, 2, 8] {
        let (patched_ops, total_ops) =
            assert_patch_matches_cold(&old, &stored, &nl, &mapping, &inputs, threads);
        assert!(
            patched_ops < total_ops,
            "one-FUB edit patched {patched_ops} of {total_ops} ops — not proportional"
        );
    }
}

/// 5%-of-FUBs edit: several FUBs dirty at once, still bit-identical.
#[test]
fn five_percent_edit_patches_bit_identically() {
    let (base, mapping, inputs) = base_revision(6);
    let (old, stored) = compile_base(&base, &mapping, &inputs);
    let fubs = stored.fubs.len();
    let gates: Vec<usize> = base
        .lines()
        .enumerate()
        .filter(|(_, l)| l.trim_start().starts_with(".gate and "))
        .map(|(i, _)| i)
        .collect();
    // Spread picks across the gate population so several FUBs dirty.
    let wanted = (fubs.div_ceil(20)).max(2);
    let picks: Vec<usize> = (0..wanted)
        .map(|k| k * gates.len().max(1) / wanted)
        .collect();
    let edited = flip_gates(&base, &picks).unwrap();
    assert_ne!(edited, base);
    let nl = flatten::parse_netlist(&edited).unwrap();
    for threads in [1usize, 2, 8] {
        assert_patch_matches_cold(&old, &stored, &nl, &mapping, &inputs, threads);
    }
}

/// Full rewrite: every FUB dirty. The patch either still reproduces the
/// cold DAG bit for bit (retaining nothing) or the warm solve itself
/// degrades — in both cases the caller ends with a correct DAG.
#[test]
fn full_rewrite_still_ends_bit_identical() {
    let (base, mapping, inputs) = base_revision(7);
    let (old, stored) = compile_base(&base, &mapping, &inputs);
    let edited = flip_all_gates(&base);
    assert_ne!(edited, base);
    let nl = flatten::parse_netlist(&edited).unwrap();
    let engine = SartEngine::new(&nl, &mapping, SartConfig::default());
    let cold = engine.run_exact(&inputs);
    let reference = CompiledSweep::compile(&cold, &nl);
    let (warm, status, clean) = engine.run_warm_patch_exact(&inputs, &stored);
    let evaluated = match (status, clean) {
        (WarmStatus::Warm { .. }, Some(mask)) => {
            match old.patch(&warm, &nl, &layout(&stored), &mask) {
                Ok((patched, _)) => patched,
                // Precondition failure is a legal outcome of a rewrite;
                // the fallback is the cold compile itself.
                Err(_) => CompiledSweep::compile(&warm, &nl),
            }
        }
        _ => reference.clone(),
    };
    for (x, y) in reference
        .evaluate(&inputs)
        .iter()
        .zip(&evaluated.evaluate(&inputs))
    {
        assert_eq!(x.to_bits(), y.to_bits());
    }
}

/// A fixpoint whose digests mismatch the old DAG (captured from a
/// *different* design) must refuse the patch, not panic: the layout
/// cannot cover the old DAG's slots.
#[test]
fn mismatched_fixpoint_degrades_to_full_rebuild() {
    let (base_a, mapping_a, inputs) = base_revision(8);
    let (old_a, _) = compile_base(&base_a, &mapping_a, &inputs);
    // A fixpoint captured from an unrelated design.
    let (base_b, mapping_b, _) = base_revision(9);
    let (_, stored_b) = compile_base(&base_b, &mapping_b, &inputs);

    let edited = flip_gates(&base_a, &[0]).unwrap();
    let nl = flatten::parse_netlist(&edited).unwrap();
    let engine = SartEngine::new(&nl, &mapping_a, SartConfig::default());
    let result = engine.run_exact(&inputs);
    // Pretend every FUB is clean — the worst possible stale mask.
    let all_clean = vec![true; nl.fub_count()];
    assert!(
        old_a
            .patch(&result, &nl, &layout(&stored_b), &all_clean)
            .is_err(),
        "a foreign fixpoint's layout must not cover the old DAG"
    );
}
