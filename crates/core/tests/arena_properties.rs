//! Property tests for the symbolic term-set engine: the algebraic laws the
//! propagation rules rely on (DESIGN.md §6, invariant 1).

use proptest::prelude::*;

use seqavf_core::arena::{TermId, TermKind, TermTable, UnionArena};
use seqavf_core::pavf::Pavf;

fn table_with_terms(n: usize) -> (TermTable, Vec<TermId>) {
    let mut t = TermTable::new();
    let ids = (0..n)
        .map(|i| t.intern(TermKind::ReadPort(format!("s{i}"))))
        .collect();
    (t, ids)
}

/// Builds an arbitrary set from term-index choices.
fn build_set(arena: &mut UnionArena, ids: &[TermId], picks: &[u8]) -> seqavf_core::arena::SetId {
    let singles: Vec<_> = picks
        .iter()
        .map(|&p| arena.singleton(ids[p as usize % ids.len()]))
        .collect();
    arena.union_many(singles)
}

proptest! {
    #[test]
    fn union_laws(a in prop::collection::vec(any::<u8>(), 0..8),
                  b in prop::collection::vec(any::<u8>(), 0..8),
                  c in prop::collection::vec(any::<u8>(), 0..8)) {
        let (_, ids) = table_with_terms(6);
        let mut ar = UnionArena::new();
        let sa = build_set(&mut ar, &ids, &a);
        let sb = build_set(&mut ar, &ids, &b);
        let sc = build_set(&mut ar, &ids, &c);
        // Commutativity, associativity, idempotence — as interned ids,
        // which is stronger than value equality.
        prop_assert_eq!(ar.union2(sa, sb), ar.union2(sb, sa));
        let ab_c = {
            let ab = ar.union2(sa, sb);
            ar.union2(ab, sc)
        };
        let a_bc = {
            let bc = ar.union2(sb, sc);
            ar.union2(sa, bc)
        };
        prop_assert_eq!(ab_c, a_bc);
        prop_assert_eq!(ar.union2(sa, sa), sa);
        // Identity and absorption.
        prop_assert_eq!(ar.union2(sa, ar.empty()), sa);
        prop_assert_eq!(ar.union2(sa, ar.top()), ar.top());
    }

    #[test]
    fn eval_is_monotone_and_bounded(a in prop::collection::vec(any::<u8>(), 0..8),
                                    b in prop::collection::vec(any::<u8>(), 0..8),
                                    vals in prop::collection::vec(0.0f64..1.0, 6)) {
        let (t, ids) = table_with_terms(6);
        let mut ar = UnionArena::new();
        let sa = build_set(&mut ar, &ids, &a);
        let sb = build_set(&mut ar, &ids, &b);
        let values = t.values(
            &|name| {
                let i: usize = name[1..].parse().unwrap();
                Some((vals[i], 0.0))
            },
            &|_| None,
            1.0,
            1.0,
        );
        let va = ar.eval(sa, &values);
        let vb = ar.eval(sb, &values);
        prop_assert!((0.0..=1.0).contains(&va));
        // A union never evaluates below either operand and never above
        // their capped sum.
        let vu = {
            let u = ar.union2(sa, sb);
            ar.eval(u, &values)
        };
        prop_assert!(vu + 1e-12 >= va.max(vb));
        prop_assert!(vu <= (va + vb).min(1.0) + 1e-12);
    }

    #[test]
    fn hash_consing_canonicalizes(picks in prop::collection::vec(any::<u8>(), 1..10),
                                  seed in any::<u64>()) {
        // Building the same set of terms in any order yields the same id.
        let (_, ids) = table_with_terms(5);
        let mut ar = UnionArena::new();
        let s1 = build_set(&mut ar, &ids, &picks);
        let mut shuffled = picks.clone();
        // Deterministic pseudo-shuffle.
        let n = shuffled.len();
        for i in 0..n {
            let j = ((seed >> (i % 56)) as usize).wrapping_add(i) % n;
            shuffled.swap(i, j);
        }
        let s2 = build_set(&mut ar, &ids, &shuffled);
        prop_assert_eq!(s1, s2);
    }

    #[test]
    fn pavf_algebra(a in 0.0f64..1.0, b in 0.0f64..1.0, c in 0.0f64..1.0) {
        let (pa, pb, pc) = (Pavf::new(a), Pavf::new(b), Pavf::new(c));
        prop_assert_eq!(pa.union(pb), pb.union(pa));
        // Associativity up to floating-point rounding.
        let l = pa.union(pb).union(pc).value();
        let r = pa.union(pb.union(pc)).value();
        prop_assert!((l - r).abs() < 1e-12);
        prop_assert_eq!(pa.union(Pavf::ZERO), pa);
        prop_assert!(pa.union(pb).value() <= 1.0);
        prop_assert!(pa.min(pb).value() <= pa.value());
        prop_assert!(pa.min(pb) == pa || pa.min(pb) == pb);
    }
}
