//! Artifact-cache correctness: the sweep cache must be keyed by netlist
//! *content*, structure mapping, and the result-affecting configuration
//! fields — a single-gate mutation invalidates it, a byte-identical
//! netlist parsed from a differently named file reuses it, and execution
//! strategy knobs (`threads`, `incremental`) never invalidate it — and
//! cache hits must reproduce bit-identical node AVFs.

use std::path::{Path, PathBuf};

use seqavf_core::engine::SartConfig;
use seqavf_core::mapping::{PavfInputs, StructureMapping};
use seqavf_core::sweep::{cache_key, run_sweep_traced, CacheStatus, SweepOptions};
use seqavf_netlist::flatten::parse_netlist;
use seqavf_netlist::graph::Netlist;
use seqavf_obs::Collector;

const DESIGN: &str = r"
.design cachetest
.fub f
  .struct s1 1
  .struct s2 1
  .flop q1 s1[0]
  .flop q2 s2[0]
  .gate nor g1 q1 q2
  .flop q3 g1
  .sw s2[0] q3
.endfub
.end
";

/// The same circuit with one gate changed (`nor` → `and`).
const DESIGN_MUTATED: &str = r"
.design cachetest
.fub f
  .struct s1 1
  .struct s2 1
  .flop q1 s1[0]
  .flop q2 s2[0]
  .gate and g1 q1 q2
  .flop q3 g1
  .sw s2[0] q3
.endfub
.end
";

fn temp_cache(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("seqavf-sweep-cache-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn workloads() -> Vec<(String, PavfInputs)> {
    (0..3)
        .map(|k| {
            let mut p = PavfInputs::new();
            p.set_port("f.s1", 0.1 + 0.2 * k as f64, 0.5);
            p.set_port("f.s2", 0.4, 0.3 + 0.1 * k as f64);
            (format!("w{k}"), p)
        })
        .collect()
}

fn sweep(
    nl: &Netlist,
    config: &SartConfig,
    dir: &Path,
    obs: &Collector,
) -> seqavf_core::sweep::SweepOutcome {
    run_sweep_traced(
        nl,
        &StructureMapping::new(),
        config,
        &PavfInputs::new(),
        &workloads(),
        &SweepOptions {
            threads: 2,
            cache_dir: Some(dir.to_path_buf()),
            warm_start: None,
        },
        obs,
    )
    .expect("sweep succeeds")
}

#[test]
fn second_run_hits_and_reproduces_avfs_bitwise() {
    let dir = temp_cache("hit");
    let nl = parse_netlist(DESIGN).unwrap();
    let config = SartConfig::default();
    let obs = Collector::new();
    let first = sweep(&nl, &config, &dir, &obs);
    assert_eq!(first.cache, CacheStatus::Miss);
    let second = sweep(&nl, &config, &dir, &obs);
    assert_eq!(second.cache, CacheStatus::Hit);
    assert_eq!(first.rows.len(), second.rows.len());
    for (a, b) in first.rows.iter().zip(&second.rows) {
        assert_eq!(a.workload, b.workload);
        for (x, y) in a.node_avfs.iter().zip(&b.node_avfs) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }
    // One miss, one hit, observable through the counters.
    let counters = obs.counters();
    assert!(counters.contains(&("sweep.cache.miss", 1)), "{counters:?}");
    assert!(counters.contains(&("sweep.cache.hit", 1)), "{counters:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn one_gate_mutation_is_a_cache_miss() {
    let dir = temp_cache("mutate");
    let nl = parse_netlist(DESIGN).unwrap();
    let mutated = parse_netlist(DESIGN_MUTATED).unwrap();
    assert_ne!(
        cache_key(&nl, &StructureMapping::new(), &SartConfig::default()),
        cache_key(&mutated, &StructureMapping::new(), &SartConfig::default()),
        "a single-gate edit must change the cache key"
    );
    let config = SartConfig::default();
    let obs = Collector::new();
    assert_eq!(sweep(&nl, &config, &dir, &obs).cache, CacheStatus::Miss);
    // The mutated netlist must not reuse the original's artifact.
    assert_eq!(
        sweep(&mutated, &config, &dir, &obs).cache,
        CacheStatus::Miss
    );
    assert!(obs.counters().contains(&("sweep.cache.miss", 2)));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn renamed_but_identical_netlist_is_a_cache_hit() {
    let dir = temp_cache("rename");
    // Simulate "same design, different file name": write the same bytes
    // to two files and parse each — the key must depend on content only.
    let file_a = dir.join("design-a.exlif");
    let file_b = dir.join("copy-of-design.exlif");
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(&file_a, DESIGN).unwrap();
    std::fs::write(&file_b, DESIGN).unwrap();
    let nl_a = parse_netlist(&std::fs::read_to_string(&file_a).unwrap()).unwrap();
    let nl_b = parse_netlist(&std::fs::read_to_string(&file_b).unwrap()).unwrap();
    let config = SartConfig::default();
    let obs = Collector::new();
    let first = sweep(&nl_a, &config, &dir, &obs);
    assert_eq!(first.cache, CacheStatus::Miss);
    let second = sweep(&nl_b, &config, &dir, &obs);
    assert_eq!(
        second.cache,
        CacheStatus::Hit,
        "content key must ignore file names"
    );
    for (a, b) in first.rows.iter().zip(&second.rows) {
        for (x, y) in a.node_avfs.iter().zip(&b.node_avfs) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn config_change_is_a_cache_miss() {
    let dir = temp_cache("config");
    let nl = parse_netlist(DESIGN).unwrap();
    let obs = Collector::disabled();
    assert_eq!(
        sweep(&nl, &SartConfig::default(), &dir, &obs).cache,
        CacheStatus::Miss
    );
    let other = SartConfig {
        loop_pavf: 0.7,
        ..SartConfig::default()
    };
    assert_eq!(sweep(&nl, &other, &dir, &obs).cache, CacheStatus::Miss);
    // And the original still hits.
    assert_eq!(
        sweep(&nl, &SartConfig::default(), &dir, &obs).cache,
        CacheStatus::Hit
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_artifact_degrades_to_a_miss() {
    let dir = temp_cache("corrupt");
    let nl = parse_netlist(DESIGN).unwrap();
    let config = SartConfig::default();
    let obs = Collector::disabled();
    assert_eq!(sweep(&nl, &config, &dir, &obs).cache, CacheStatus::Miss);
    // Clobber the stored artifact; the next run must recompute (and
    // overwrite it with a good copy), never error or return garbage.
    let artifact = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(Result::ok)
        .find(|e| e.file_name().to_string_lossy().starts_with("sweep-"))
        .expect("artifact stored")
        .path();
    std::fs::write(&artifact, "seqavf-sweep/2\ngarbage\n").unwrap();
    assert_eq!(sweep(&nl, &config, &dir, &obs).cache, CacheStatus::Miss);
    // A stale pre-result-key artifact (v1 header) is likewise just a miss.
    std::fs::write(&artifact, "seqavf-sweep/1\ngarbage\n").unwrap();
    assert_eq!(sweep(&nl, &config, &dir, &obs).cache, CacheStatus::Miss);
    assert_eq!(sweep(&nl, &config, &dir, &obs).cache, CacheStatus::Hit);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn execution_strategy_fields_do_not_poison_the_key() {
    // `threads` and `incremental` pick how the fixpoint is computed, not
    // which fixpoint — results are bit-identical by design, so every
    // combination must map to the same cache key.
    let nl = parse_netlist(DESIGN).unwrap();
    let map = StructureMapping::new();
    let base_key = cache_key(&nl, &map, &SartConfig::default());
    for threads in [0, 1, 2, 8, 32] {
        for incremental in [false, true] {
            let cfg = SartConfig {
                threads,
                incremental,
                ..SartConfig::default()
            };
            assert_eq!(
                cache_key(&nl, &map, &cfg),
                base_key,
                "threads={threads} incremental={incremental} must not change the key"
            );
        }
    }
    // Result-affecting fields still must.
    let other = SartConfig {
        max_iterations: 3,
        ..SartConfig::default()
    };
    assert_ne!(cache_key(&nl, &map, &other), base_key);
}

#[test]
fn thread_count_and_incremental_changes_hit_the_same_artifact() {
    // Regression for the key poisoning bug: a `--threads 8` sweep must
    // reuse (and bitwise reproduce) the artifact a `--threads 1` sweep
    // wrote, with `--no-incremental` thrown in for good measure.
    let dir = temp_cache("exec-fields");
    let nl = parse_netlist(DESIGN).unwrap();
    let obs = Collector::new();
    let one_thread = SartConfig {
        threads: 1,
        incremental: true,
        ..SartConfig::default()
    };
    let first = sweep(&nl, &one_thread, &dir, &obs);
    assert_eq!(first.cache, CacheStatus::Miss);
    let eight_threads = SartConfig {
        threads: 8,
        incremental: false,
        ..SartConfig::default()
    };
    let second = sweep(&nl, &eight_threads, &dir, &obs);
    assert_eq!(
        second.cache,
        CacheStatus::Hit,
        "execution-strategy fields must not invalidate the cache"
    );
    for (a, b) in first.rows.iter().zip(&second.rows) {
        assert_eq!(a.workload, b.workload);
        for (x, y) in a.node_avfs.iter().zip(&b.node_avfs) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }
    let counters = obs.counters();
    assert!(counters.contains(&("sweep.cache.miss", 1)), "{counters:?}");
    assert!(counters.contains(&("sweep.cache.hit", 1)), "{counters:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn mapping_change_is_a_cache_miss() {
    // The structure mapping decides which structures carry perf-counter
    // names, which changes the compiled DAG's Struct slots — two sweeps
    // differing only in mapping must not share an artifact.
    let dir = temp_cache("mapping");
    let nl = parse_netlist(DESIGN).unwrap();
    let config = SartConfig::default();
    let obs = Collector::disabled();
    let empty = StructureMapping::new();
    let mut mapped = StructureMapping::new();
    let sid = nl
        .structure_ids()
        .next()
        .expect("test design has structures");
    mapped.insert(sid, "uops_executed");
    assert_ne!(
        cache_key(&nl, &empty, &config),
        cache_key(&nl, &mapped, &config),
        "mapping must be part of the cache key"
    );
    let opts = SweepOptions {
        threads: 2,
        cache_dir: Some(dir.clone()),
        warm_start: None,
    };
    let run = |mapping: &StructureMapping| {
        run_sweep_traced(
            &nl,
            mapping,
            &config,
            &PavfInputs::new(),
            &workloads(),
            &opts,
            &obs,
        )
        .expect("sweep succeeds")
    };
    assert_eq!(run(&empty).cache, CacheStatus::Miss);
    assert_eq!(
        run(&mapped).cache,
        CacheStatus::Miss,
        "a different mapping must not reuse the empty mapping's artifact"
    );
    assert_eq!(run(&empty).cache, CacheStatus::Hit);
    assert_eq!(run(&mapped).cache, CacheStatus::Hit);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sweep_trace_validates_against_the_schema() {
    let dir = temp_cache("trace");
    let nl = parse_netlist(DESIGN).unwrap();
    let config = SartConfig::default();
    let obs = Collector::new();
    sweep(&nl, &config, &dir, &obs);
    let mut buf = Vec::new();
    obs.write_ndjson(&mut buf, &[("cmd", "sweep")]).unwrap();
    let text = String::from_utf8(buf).unwrap();
    seqavf_obs::validate_trace(&text).expect("sweep trace validates");
    assert!(text.contains("sweep.compile"));
    assert!(text.contains("sweep.eval"));
    assert!(text.contains("sweep.cache.miss"));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Warm sweep after an edit *patches* the previous revision's cached DAG
/// — `sweep.patch.hit`, ops mostly retained — and still reproduces an
/// independent cold sweep bit for bit; re-sweeping the edited design is
/// then a plain cache hit with nothing to patch.
#[test]
fn warm_sweep_patches_the_cached_dag_after_an_edit() {
    use seqavf_core::sweep::PatchStatus;
    use seqavf_netlist::exlif;
    use seqavf_netlist::synth::{generate, SynthConfig};

    let dir = temp_cache("dagpatch");
    let design = generate(&SynthConfig::xeon_like(21));
    let base_text = exlif::write(&design.netlist);
    let mapping = StructureMapping::from_pairs(design.meta.structure_map.clone());
    let config = SartConfig::default();
    let mut inputs = PavfInputs::new();
    inputs.set_port("uops_executed", 0.21, 0.34);
    let wl = vec![("w0".to_owned(), inputs.clone())];
    let opts = SweepOptions {
        threads: 2,
        cache_dir: Some(dir.clone()),
        warm_start: Some(dir.join("fixpoints")),
    };
    let obs = Collector::new();

    let nl0 = parse_netlist(&base_text).unwrap();
    let first = run_sweep_traced(&nl0, &mapping, &config, &inputs, &wl, &opts, &obs).unwrap();
    assert_eq!(first.cache, CacheStatus::Miss);
    assert!(first.patch.is_none(), "first sweep has nothing to patch");

    let edited_text = base_text.replacen(".gate and ", ".gate or ", 1);
    assert_ne!(
        edited_text, base_text,
        "synthetic design must have an and-gate"
    );
    let nl1 = parse_netlist(&edited_text).unwrap();
    let second = run_sweep_traced(&nl1, &mapping, &config, &inputs, &wl, &opts, &obs).unwrap();
    assert_eq!(second.cache, CacheStatus::Miss);
    let st = match second.patch {
        Some(PatchStatus::Patched(st)) => st,
        other => panic!("expected a DAG patch after a one-gate edit, got {other:?}"),
    };
    let total_ops = second.stats.sum_ops + second.stats.min_ops;
    assert!(st.ops_retained > 0, "a one-gate edit must retain ops");
    assert!(
        st.nodes_patched() < total_ops,
        "patched {} of {total_ops} ops — not proportional to the edit",
        st.nodes_patched()
    );
    let report = obs.report();
    assert_eq!(report.counter("sweep.patch.hit"), Some(1));
    assert_eq!(report.counter("sweep.patch.full_rebuild"), None);
    assert!(report.counter("sweep.patch.nodes_patched").is_some());

    // The patched DAG's rows match an independent, cache-less cold sweep.
    let cold = run_sweep_traced(
        &nl1,
        &mapping,
        &config,
        &inputs,
        &wl,
        &SweepOptions {
            threads: 2,
            cache_dir: None,
            warm_start: None,
        },
        &Collector::disabled(),
    )
    .unwrap();
    for (a, b) in second.rows.iter().zip(&cold.rows) {
        for (x, y) in a.node_avfs.iter().zip(&b.node_avfs) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    // Idempotent re-sweep: plain artifact hit, no patch involved.
    let third = run_sweep_traced(&nl1, &mapping, &config, &inputs, &wl, &opts, &obs).unwrap();
    assert_eq!(third.cache, CacheStatus::Hit);
    assert!(third.patch.is_none());

    // The patch telemetry rides the NDJSON trace schema: the span and
    // both volume counters validate and appear by name.
    let mut buf = Vec::new();
    obs.write_ndjson(&mut buf, &[("cmd", "sweep")]).unwrap();
    let text = String::from_utf8(buf).unwrap();
    seqavf_obs::validate_trace(&text).expect("patch trace validates");
    assert!(text.contains("sweep.patch"), "span missing from trace");
    assert!(text.contains("sweep.patch.hit"));
    assert!(text.contains("sweep.patch.nodes_patched"));
    assert!(text.contains("sweep.patch.nodes_orphaned"));
    let _ = std::fs::remove_dir_all(&dir);
}
