//! Property tests pinning the warm-start path to the cold solver: for
//! random synthetic designs and random single- and multi-FUB gate edits,
//! a re-solve seeded from the previous revision's stored fixpoint must be
//! **bit-identical** (`f64::to_bits`) to a cold solve of the edited
//! design — at 1, 2, and 8 threads — while walking strictly fewer nodes.
//! The `seqavf-fixpoint/1` artifact itself must round-trip exactly and
//! reject (never panic on) truncated or corrupted bytes.

use proptest::prelude::*;

use seqavf_core::engine::{SartConfig, SartEngine, WarmStatus};
use seqavf_core::fixpoint::StoredFixpoint;
use seqavf_core::mapping::{PavfInputs, StructureMapping};
use seqavf_netlist::exlif;
use seqavf_netlist::flatten;
use seqavf_netlist::synth::{generate, SynthConfig};

/// The base revision: a synthetic design's EXLIF text, its structure
/// mapping, and a workload table.
fn base_revision(seed: u64) -> (String, StructureMapping, PavfInputs) {
    let design = generate(&SynthConfig::xeon_like(seed));
    let text = exlif::write(&design.netlist);
    let mapping = StructureMapping::from_pairs(design.meta.structure_map.clone());
    let mut inputs = PavfInputs::new();
    inputs.set_port("uops_executed", 0.21, 0.34);
    (text, mapping, inputs)
}

/// Flips `picks`-selected and/or gates in the EXLIF text — the textual
/// form of a designer's edit. Returns `None` if the design has no gates
/// to flip.
fn flip_gates(text: &str, picks: &[usize]) -> Option<String> {
    let mut lines: Vec<String> = text.lines().map(str::to_owned).collect();
    let gate_lines: Vec<usize> = lines
        .iter()
        .enumerate()
        .filter(|(_, l)| {
            let t = l.trim_start();
            t.starts_with(".gate and ") || t.starts_with(".gate or ")
        })
        .map(|(i, _)| i)
        .collect();
    if gate_lines.is_empty() {
        return None;
    }
    for &p in picks {
        let i = gate_lines[p % gate_lines.len()];
        lines[i] = if lines[i].trim_start().starts_with(".gate and ") {
            lines[i].replacen(".gate and ", ".gate or ", 1)
        } else {
            lines[i].replacen(".gate or ", ".gate and ", 1)
        };
    }
    Some(lines.join("\n") + "\n")
}

/// Cold-solves `text` and captures its fixpoint artifact.
fn solve_and_capture(
    text: &str,
    mapping: &StructureMapping,
    inputs: &PavfInputs,
) -> StoredFixpoint {
    let nl = flatten::parse_netlist(text).unwrap();
    let engine = SartEngine::new(&nl, mapping, SartConfig::default());
    let result = engine.run(inputs);
    engine
        .capture_fixpoint(&result)
        .expect("base revision must converge")
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// The headline contract: warm ≡ cold, bit for bit, for arbitrary
    /// gate edits (1..6 flips land in one or several FUBs) at every
    /// thread count — and the warm path engages (some FUBs seeded).
    #[test]
    fn warm_resolve_is_bit_identical_to_cold(
        seed in 0u64..3,
        picks in proptest::collection::vec(any::<usize>(), 1..6),
    ) {
        let (base, mapping, inputs) = base_revision(seed);
        let stored = solve_and_capture(&base, &mapping, &inputs);
        let edited = flip_gates(&base, &picks).expect("synthetic design has gates");
        prop_assume!(edited != base);

        let nl = flatten::parse_netlist(&edited).unwrap();
        for threads in [1usize, 2, 8] {
            let config = SartConfig { threads, ..SartConfig::default() };
            let engine = SartEngine::new(&nl, &mapping, config);
            let cold = engine.run_exact(&inputs);
            let (warm, status) = engine.run_warm_exact(&inputs, &stored);
            match status {
                WarmStatus::Warm { seeded_fubs, dirty_fubs } => {
                    prop_assert!(seeded_fubs > 0, "no FUB seeded at {threads} threads");
                    prop_assert!(dirty_fubs > 0, "an edit must dirty at least one FUB");
                }
                WarmStatus::Cold(reason) => {
                    prop_assert!(false, "warm path refused at {threads} threads: {reason}");
                }
            }
            prop_assert_eq!(cold.avf.len(), warm.avf.len());
            for (i, (c, w)) in cold.avf.iter().zip(&warm.avf).enumerate() {
                prop_assert_eq!(
                    c.to_bits(), w.to_bits(),
                    "AVF diverges at node {} with {} threads", i, threads
                );
            }
        }
    }

    /// Artifact robustness: decode must reject — never panic on — any
    /// truncation and any single corrupted byte of a valid artifact.
    #[test]
    fn artifact_decode_survives_truncation_and_corruption(
        seed in 0u64..2,
        cut in any::<usize>(),
        flip_at in any::<usize>(),
        flip_bit in 0u8..8,
    ) {
        let (base, mapping, inputs) = base_revision(seed);
        let stored = solve_and_capture(&base, &mapping, &inputs);
        let bytes = stored.encode();

        let cut = cut % bytes.len();
        prop_assert!(
            StoredFixpoint::decode(&bytes[..cut]).is_err(),
            "truncation to {cut} bytes decoded successfully"
        );

        let mut corrupt = bytes.clone();
        let i = flip_at % corrupt.len();
        corrupt[i] ^= 1 << flip_bit;
        // The checksum trailer catches virtually every flip; the assert
        // is only that decode returns (no panic, no unbounded alloc).
        let _ = StoredFixpoint::decode(&corrupt);
    }
}

/// The artifact round-trips exactly: decode(encode(x)) reproduces every
/// field, and re-encoding is byte-stable.
#[test]
fn artifact_roundtrips_byte_stably() {
    let (base, mapping, inputs) = base_revision(1);
    let stored = solve_and_capture(&base, &mapping, &inputs);
    let bytes = stored.encode();
    let back = StoredFixpoint::decode(&bytes).unwrap();
    assert_eq!(back.encode(), bytes);
}

/// An unedited re-solve seeds every FUB and converges without walking a
/// single node.
#[test]
fn unedited_warm_resolve_walks_nothing() {
    let (base, mapping, inputs) = base_revision(2);
    let stored = solve_and_capture(&base, &mapping, &inputs);
    let nl = flatten::parse_netlist(&base).unwrap();
    let engine = SartEngine::new(&nl, &mapping, SartConfig::default());
    let cold = engine.run(&inputs);
    let (warm, status) =
        engine.run_warm_traced(&inputs, &stored, &seqavf_obs::Collector::disabled());
    match status {
        WarmStatus::Warm {
            seeded_fubs,
            dirty_fubs,
        } => {
            assert!(seeded_fubs > 0);
            assert_eq!(dirty_fubs, 0);
        }
        WarmStatus::Cold(reason) => panic!("warm path refused: {reason}"),
    }
    assert_eq!(warm.outcome.total_walked_nodes(), 0);
    for (c, w) in cold.avf.iter().zip(&warm.avf) {
        assert_eq!(c.to_bits(), w.to_bits());
    }
}

/// A one-gate edit re-walks strictly less than the cold solve — the
/// latency claim behind the whole artifact.
#[test]
fn one_gate_edit_walks_fewer_nodes_than_cold() {
    let (base, mapping, inputs) = base_revision(3);
    let stored = solve_and_capture(&base, &mapping, &inputs);
    let edited = flip_gates(&base, &[0]).unwrap();
    assert_ne!(edited, base);
    let nl = flatten::parse_netlist(&edited).unwrap();
    let engine = SartEngine::new(&nl, &mapping, SartConfig::default());
    let cold = engine.run(&inputs);
    let (warm, status) =
        engine.run_warm_traced(&inputs, &stored, &seqavf_obs::Collector::disabled());
    assert!(
        matches!(status, WarmStatus::Warm { dirty_fubs: 1, .. }),
        "one gate flip must dirty exactly one FUB: {status:?}"
    );
    let cold_walked = cold.outcome.total_walked_nodes();
    let warm_walked = warm.outcome.total_walked_nodes();
    assert!(
        warm_walked < cold_walked,
        "warm walked {warm_walked} nodes, cold {cold_walked}"
    );
    for (c, w) in cold.avf.iter().zip(&warm.avf) {
        assert_eq!(c.to_bits(), w.to_bits());
    }
}

/// A config whose `result_key` differs from the stored artifact must fall
/// back to a cold solve — warm-starting across result-affecting config
/// changes would seed from the wrong fixpoint.
#[test]
fn result_key_mismatch_falls_back_to_cold() {
    let (base, mapping, inputs) = base_revision(4);
    let stored = solve_and_capture(&base, &mapping, &inputs);
    let nl = flatten::parse_netlist(&base).unwrap();
    let config = SartConfig {
        loop_pavf: 0.45,
        ..SartConfig::default()
    };
    let engine = SartEngine::new(&nl, &mapping, config.clone());
    let (warm, status) =
        engine.run_warm_traced(&inputs, &stored, &seqavf_obs::Collector::disabled());
    assert!(
        matches!(status, WarmStatus::Cold(_)),
        "result_key mismatch must refuse the seed: {status:?}"
    );
    // The fallback is a full, correct solve.
    let cold = engine.run(&inputs);
    for (c, w) in cold.avf.iter().zip(&warm.avf) {
        assert_eq!(c.to_bits(), w.to_bits());
    }
}
