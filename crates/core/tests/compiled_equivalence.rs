//! Property tests pinning the compiled sweep DAG to the interpreter: for
//! random synthetic netlists and random per-workload pAVF tables, the
//! compiled evaluation must be **bit-identical** (`f64::to_bits`) to
//! `SartResult::reevaluate` and to a fresh `engine.run`, and must survive
//! the artifact text round trip unchanged.

use proptest::prelude::*;

use seqavf_core::compile::CompiledSweep;
use seqavf_core::engine::{SartConfig, SartEngine};
use seqavf_core::mapping::{PavfInputs, StructureMapping};
use seqavf_netlist::graph::{GateOp, Netlist, NetlistBuilder, NodeId, NodeKind, SeqKind};

/// Deterministically builds a valid circuit from a byte recipe (the same
/// idiom as the top-level property suite): bytes select operations over a
/// growing signal pool. This variant also plants control registers (the
/// `creg` name pattern) so every compiled slot kind is exercised.
fn build_circuit(recipe: &[(u8, u8, u8)], fubs: usize) -> Netlist {
    let mut b = NetlistBuilder::new("prop");
    let fubs: Vec<_> = (0..fubs.max(1))
        .map(|i| b.add_fub(format!("f{i}")))
        .collect();
    let mut pool: Vec<NodeId> = Vec::new();
    let s1 = b.add_structure("f0.sa", 3, fubs[0]);
    let s2 = b.add_structure("f0.sb", 3, fubs[0]);
    for bit in 0..3 {
        pool.push(b.structure_cell(s1, bit));
        pool.push(b.structure_cell(s2, bit));
    }
    for i in 0..2 {
        pool.push(b.add_node(format!("f0.in{i}"), NodeKind::Input, fubs[0]));
    }

    let flop = NodeKind::Seq {
        kind: SeqKind::Flop,
        has_enable: false,
    };
    let gates = [GateOp::And, GateOp::Or, GateOp::Nor, GateOp::Xor];
    let mut struct_writes = 0usize;
    for (i, &(kind, x, y)) in recipe.iter().enumerate() {
        let fub = fubs[i % fubs.len()];
        let fname = |n: &str| format!("f{}.{n}{i}", i % fubs.len());
        let pick = |k: u8| pool[k as usize % pool.len()];
        match kind % 7 {
            0 | 1 => {
                let g = b.add_node(
                    fname("g"),
                    NodeKind::Comb(gates[x as usize % gates.len()]),
                    fub,
                );
                b.connect(pick(x), g);
                b.connect(pick(y), g);
                let q = b.add_node(fname("q"), flop, fub);
                b.connect(g, q);
                pool.push(q);
            }
            2 => {
                let q = b.add_node(fname("p"), flop, fub);
                b.connect(pick(x), q);
                pool.push(q);
            }
            3 => {
                // FSM loop → LoopSeq slots.
                let a = b.add_node(fname("la"), flop, fub);
                let l2 = b.add_node(fname("lb"), flop, fub);
                let g = b.add_node(fname("lg"), NodeKind::Comb(GateOp::Or), fub);
                b.connect(a, l2);
                b.connect(l2, g);
                b.connect(pick(x), g);
                b.connect(g, a);
                pool.push(l2);
            }
            4 => {
                // Structure write (bounded so some cells stay read-only).
                if struct_writes < 4 {
                    let cell = b.structure_cell(if x % 2 == 0 { s1 } else { s2 }, u32::from(y) % 3);
                    b.connect(pick(x), cell);
                    struct_writes += 1;
                } else {
                    let q = b.add_node(fname("pw"), flop, fub);
                    b.connect(pick(x), q);
                    pool.push(q);
                }
            }
            5 => {
                // Control register → Ctrl slots.
                let c = b.add_node(fname("creg"), flop, fub);
                b.connect(pick(x), c);
                pool.push(c);
            }
            _ => {
                let o = b.add_node(fname("o"), NodeKind::Output, fub);
                b.connect(pick(x), o);
            }
        }
    }
    let last = *pool.last().expect("pool non-empty");
    let o = b.add_node("f0.final_out", NodeKind::Output, fubs[0]);
    b.connect(last, o);
    b.finish().expect("recipe-built netlists are valid")
}

fn recipe_strategy() -> impl Strategy<Value = (Vec<(u8, u8, u8)>, usize)> {
    (
        prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 4..60),
        1usize..4,
    )
}

/// A random per-workload table: port pAVFs for the two structures plus an
/// optional measured structure AVF (exercising the struct-cell override).
fn table_strategy() -> impl Strategy<Value = PavfInputs> {
    (
        (0.0f64..1.0, 0.0f64..1.0),
        (0.0f64..1.0, 0.0f64..1.0),
        (any::<bool>(), 0.0f64..1.0),
    )
        .prop_map(|((ra, wa), (rb, wb), (measured, savf))| {
            let mut p = PavfInputs::new();
            p.set_port("f0.sa", ra, wa);
            p.set_port("f0.sb", rb, wb);
            if measured {
                p.set_structure_avf("f0.sa", savf);
            }
            p
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn compiled_is_bit_identical_to_interpreter_and_fresh_run(
        (recipe, fubs) in recipe_strategy(),
        tables in prop::collection::vec(table_strategy(), 1..5),
        loop_pavf in 0.0f64..1.0,
    ) {
        let nl = build_circuit(&recipe, fubs);
        let config = SartConfig { loop_pavf, ..SartConfig::default() };
        let engine = SartEngine::new(&nl, &StructureMapping::new(), config);
        let result = engine.run(&tables[0]);
        let compiled = CompiledSweep::compile(&result, &nl);
        for (k, t) in tables.iter().enumerate() {
            let fast = compiled.evaluate(t);
            let slow = result.reevaluate(&nl, t);
            prop_assert_eq!(fast.len(), slow.len());
            for id in nl.nodes() {
                let i = id.index();
                prop_assert_eq!(
                    fast[i].to_bits(), slow[i].to_bits(),
                    "table {}, node {}: compiled {} vs interpreted {}",
                    k, nl.name(id), fast[i], slow[i]
                );
            }
            // The relaxation fixpoint is symbolic and value-independent, so
            // a fresh run under the same config must agree bitwise too.
            let fresh = engine.run(t);
            for id in nl.nodes() {
                prop_assert_eq!(
                    fast[id.index()].to_bits(), fresh.avf(id).to_bits(),
                    "table {}, node {}: compiled {} vs fresh {}",
                    k, nl.name(id), fast[id.index()], fresh.avf(id)
                );
            }
        }
    }

    #[test]
    fn evaluate_many_matches_per_table_evaluation(
        (recipe, fubs) in recipe_strategy(),
        tables in prop::collection::vec(table_strategy(), 1..9),
        threads in 1usize..5,
    ) {
        let nl = build_circuit(&recipe, fubs);
        let engine = SartEngine::new(&nl, &StructureMapping::new(), SartConfig::default());
        let result = engine.run(&tables[0]);
        let compiled = CompiledSweep::compile(&result, &nl);
        let batch = compiled.evaluate_many(&tables, threads);
        prop_assert_eq!(batch.len(), tables.len());
        for (k, t) in tables.iter().enumerate() {
            let single = compiled.evaluate(t);
            for (a, b) in batch[k].iter().zip(&single) {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "workload {}", k);
            }
        }
    }

    #[test]
    fn artifact_roundtrip_preserves_bitwise_evaluation(
        (recipe, fubs) in recipe_strategy(),
        table in table_strategy(),
    ) {
        let nl = build_circuit(&recipe, fubs);
        let engine = SartEngine::new(&nl, &StructureMapping::new(), SartConfig::default());
        let result = engine.run(&table);
        let compiled = CompiledSweep::compile(&result, &nl);
        let text = compiled.to_text();
        let back = CompiledSweep::from_text(&text, compiled.config())
            .expect("serialized artifact parses");
        prop_assert_eq!(&back, &compiled);
        let a = compiled.evaluate(&table);
        let b = back.evaluate(&table);
        for (x, y) in a.iter().zip(&b) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }
}
