//! Offline stand-in for the `serde_json` crate.
//!
//! Renders and parses the vendored `serde::Value` JSON tree. Supports the
//! subset the workspace uses: `to_string`, `to_string_pretty`, `from_str`,
//! and the `Error` type.

use serde::{DeError, Deserialize, Serialize, Value};

/// JSON serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

/// Serializes a value to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes a value to a 2-space-indented JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses a JSON string into a deserializable value.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing input at byte {}", p.pos)));
    }
    Ok(T::from_value(&v)?)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(s) => out.push_str(s),
        Value::Str(s) => write_string(s, out),
        Value::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Obj(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(Error(format!(
                "unexpected byte `{}` at {}",
                b as char, self.pos
            ))),
            None => Err(Error("unexpected end of input".into())),
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid utf8 in number".into()))?;
        if text.is_empty() || text == "-" || text.parse::<f64>().is_err() {
            return Err(Error(format!("bad number `{text}` at byte {start}")));
        }
        Ok(Value::Num(text.to_owned()))
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'u') => {
                            let code = self.hex4()?;
                            // Handle surrogate pairs for non-BMP chars.
                            let ch = if (0xD800..0xDC00).contains(&code) {
                                self.pos += 1; // consume the `u` now
                                if self.peek() != Some(b'\\') {
                                    return Err(Error("lone high surrogate".into()));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(Error("lone high surrogate".into()));
                                }
                                let low = self.hex4()?;
                                let c = 0x10000
                                    + ((code - 0xD800) << 10)
                                    + (low
                                        .checked_sub(0xDC00)
                                        .ok_or_else(|| Error("bad low surrogate".into()))?);
                                char::from_u32(c)
                                    .ok_or_else(|| Error("bad surrogate pair".into()))?
                            } else {
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u escape".into()))?
                            };
                            out.push(ch);
                            // hex4 leaves pos on the last hex digit; the
                            // common increment below advances past it.
                        }
                        other => {
                            return Err(Error(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error("invalid utf8 in string".into()))?;
                    let c = rest.chars().next().expect("nonempty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Reads the 4 hex digits of a `\uXXXX` escape. On entry `pos` is at the
    /// `u`; on exit it is at the last hex digit.
    fn hex4(&mut self) -> Result<u32, Error> {
        let start = self.pos + 1;
        let end = start + 4;
        if end > self.bytes.len() {
            return Err(Error("truncated \\u escape".into()));
        }
        let hex = std::str::from_utf8(&self.bytes[start..end])
            .map_err(|_| Error("invalid utf8 in \\u escape".into()))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| Error("bad \\u escape".into()))?;
        self.pos = end - 1;
        Ok(code)
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                _ => return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        let v: u64 = from_str("18446744073709551615").unwrap();
        assert_eq!(v, u64::MAX);
        let s = to_string(&u64::MAX).unwrap();
        assert_eq!(s, "18446744073709551615");
        let f: f64 = from_str("0.1").unwrap();
        assert_eq!(f, 0.1);
        assert_eq!(to_string(&0.1f64).unwrap(), "0.1");
    }

    #[test]
    fn roundtrip_structures() {
        let v: Vec<Option<bool>> = from_str("[true, null, false]").unwrap();
        assert_eq!(v, vec![Some(true), None, Some(false)]);
        let m: std::collections::BTreeMap<String, Vec<u32>> =
            from_str(r#"{"a": [1,2], "b": []}"#).unwrap();
        assert_eq!(m["a"], vec![1, 2]);
        assert!(m["b"].is_empty());
    }

    #[test]
    fn string_escapes() {
        let s: String = from_str(r#""a\"b\\c\ndA😀""#).unwrap();
        assert_eq!(s, "a\"b\\c\ndA\u{1F600}");
        let rendered = to_string(&"x\"y\n\u{1F600}".to_owned()).unwrap();
        let back: String = from_str(&rendered).unwrap();
        assert_eq!(back, "x\"y\n\u{1F600}");
    }

    #[test]
    fn pretty_output_shape() {
        let m: std::collections::BTreeMap<String, u32> =
            [("k".to_owned(), 1u32)].into_iter().collect();
        let pretty = to_string_pretty(&m).unwrap();
        assert_eq!(pretty, "{\n  \"k\": 1\n}");
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<bool>("true x").is_err());
        assert!(from_str::<u32>("12,").is_err());
    }
}
