//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset this workspace uses: the `proptest!` macro with
//! `#![proptest_config(ProptestConfig::with_cases(n))]`, `any::<T>()`,
//! integer/float range strategies, `prop::collection::vec`,
//! `prop::sample::select`, tuple strategies, `.prop_map`, regex-literal
//! string strategies, and the `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from real proptest: generation is seeded deterministically
//! from the test name (every run replays the same cases), there is **no
//! shrinking** (the failing input is printed verbatim), and
//! `.proptest-regressions` files are not read.

use std::fmt::Debug;
use std::ops::Range;

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use super::test_runner::TestRng;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
    }
}

pub mod test_runner {
    //! Deterministic RNG + per-test configuration.

    /// xoshiro256** generator; self-contained so the stub has no deps.
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Seeds deterministically from a test identifier string.
        pub fn deterministic(name: &str) -> TestRng {
            // FNV-1a over the name, then SplitMix64 to expand.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            let mut state = h;
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            TestRng {
                s: [next(), next(), next(), next() | 1],
            }
        }

        /// Next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }

        /// Uniform f64 in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform usize in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: usize) -> usize {
            (self.next_u64() % bound as u64) as usize
        }
    }

    /// Per-`proptest!`-block configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of passing cases required.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config with an explicit case count.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Outcome of one generated case.
    pub enum TestCaseResult {
        /// Ran to completion.
        Pass,
        /// `prop_assume!` rejected the inputs; retry with fresh ones.
        Reject,
    }
}

pub mod arbitrary {
    //! `any::<T>()` — full-range values for primitive types.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Types with a canonical "anything goes" strategy.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.unit_f64()
        }
    }

    macro_rules! impl_arbitrary_tuple {
        ($(($($t:ident),+))*) => {$(
            impl<$($t: Arbitrary),+> Arbitrary for ($($t,)+) {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    ($(<$t as Arbitrary>::arbitrary(rng),)+)
                }
            }
        )*};
    }

    impl_arbitrary_tuple! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
    }

    /// Strategy produced by [`any`].
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

// ---------------------------------------------------------------------------
// Range strategies
// ---------------------------------------------------------------------------

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl strategy::Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut test_runner::TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl strategy::Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut test_runner::TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

// ---------------------------------------------------------------------------
// Regex-literal string strategies
// ---------------------------------------------------------------------------

/// Compiled atom of the tiny regex subset used for string strategies.
enum RegexAtom {
    /// One char drawn from an explicit alphabet.
    Class {
        alphabet: Vec<char>,
        min: usize,
        max: usize,
    },
}

/// Parses the regex subset `[...]`, `\PC`, `.`, literal chars, each with an
/// optional `{m,n}` repetition. Anything fancier panics loudly so a future
/// test author knows to extend the stub.
fn compile_regex_subset(pattern: &str) -> Vec<RegexAtom> {
    let mut atoms = Vec::new();
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    // Printable, newline-free alphabet used for `\PC` and `.`: ASCII plus a
    // couple of multibyte chars to exercise UTF-8 handling in parsers.
    let printable: Vec<char> = (' '..='~').chain(['é', 'λ', '→']).collect();
    while i < chars.len() {
        let alphabet: Vec<char> = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .expect("unterminated [class] in regex strategy")
                    + i;
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j], chars[j + 2]);
                        set.extend(lo..=hi);
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                i = close + 1;
                set
            }
            '\\' => {
                // Only `\PC` (printable char) is supported.
                assert!(
                    chars.get(i + 1) == Some(&'P') && chars.get(i + 2) == Some(&'C'),
                    "unsupported escape in regex strategy `{pattern}`"
                );
                i += 3;
                printable.clone()
            }
            '.' => {
                i += 1;
                printable.clone()
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        // Optional {m,n} / {n} repetition.
        let (min, max) = if chars.get(i) == Some(&'{') {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .expect("unterminated {rep} in regex strategy")
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("bad {m,n} lower bound"),
                    hi.trim().parse().expect("bad {m,n} upper bound"),
                ),
                None => {
                    let n = body.trim().parse().expect("bad {n} count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        assert!(!alphabet.is_empty(), "empty alphabet in regex strategy");
        atoms.push(RegexAtom::Class { alphabet, min, max });
    }
    atoms
}

impl strategy::Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut test_runner::TestRng) -> String {
        let atoms = compile_regex_subset(self);
        let mut out = String::new();
        for RegexAtom::Class { alphabet, min, max } in &atoms {
            let n = if max > min {
                min + rng.below(max - min + 1)
            } else {
                *min
            };
            for _ in 0..n {
                out.push(alphabet[rng.below(alphabet.len())]);
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Collection + sample strategies
// ---------------------------------------------------------------------------

pub mod collection {
    //! `prop::collection::vec`.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive length bounds, buildable from `n`, `a..b`, or `a..=b`
    /// (mirroring real proptest's `SizeRange`).
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty vec size range");
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy for variable-length vectors.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.min + rng.below(self.size.max - self.size.min + 1);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A vector of elements drawn from `element`, with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod sample {
    //! `prop::sample::select`.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Strategy choosing uniformly from a fixed list.
    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len())].clone()
        }
    }

    /// Chooses one of `options` uniformly.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select() needs at least one option");
        Select { options }
    }
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use super::arbitrary::any;
    pub use super::strategy::Strategy;
    pub use super::test_runner::ProptestConfig;
    pub use super::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Namespace alias matching real proptest's `prop::...` paths.
    pub mod prop {
        pub use super::super::collection;
        pub use super::super::sample;
    }
}

/// Drives one property: generates up to `cases` inputs, skipping
/// `prop_assume!` rejections, and reports the first failing input.
#[doc(hidden)]
pub fn __run<F>(config: &test_runner::ProptestConfig, test_name: &str, mut case: F)
where
    F: FnMut(&mut test_runner::TestRng) -> CaseOutcome,
{
    let mut rng = test_runner::TestRng::deterministic(test_name);
    let mut passed = 0u32;
    let mut attempts = 0u64;
    let max_attempts = (config.cases as u64) * 20 + 100;
    while passed < config.cases {
        attempts += 1;
        if attempts > max_attempts {
            panic!(
                "proptest stub: `{test_name}` rejected too many inputs \
                 ({passed}/{} passed after {attempts} attempts)",
                config.cases
            );
        }
        match case(&mut rng) {
            CaseOutcome::Pass => passed += 1,
            CaseOutcome::Reject => {}
            CaseOutcome::Fail { inputs, payload } => {
                eprintln!("proptest stub: `{test_name}` failed on case {attempts}:");
                for line in inputs {
                    eprintln!("    {line}");
                }
                eprintln!("    (no shrinking in the offline stub)");
                std::panic::resume_unwind(payload);
            }
        }
    }
}

/// Result of one case inside [`__run`].
#[doc(hidden)]
pub enum CaseOutcome {
    /// Body completed.
    Pass,
    /// `prop_assume!` bailed out.
    Reject,
    /// Body panicked; inputs are pre-rendered for the report.
    Fail {
        inputs: Vec<String>,
        payload: Box<dyn std::any::Any + Send>,
    },
}

/// Renders one generated input for the failure report.
#[doc(hidden)]
pub fn __describe<T: Debug>(name: &str, value: &T) -> String {
    format!("{name} = {value:?}")
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Defines property tests. See the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg_pat:pat in $arg_strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            $crate::__run(
                &__config,
                concat!(module_path!(), "::", stringify!($name)),
                |__rng| {
                    let mut __inputs: Vec<String> = Vec::new();
                    $(
                        let __value =
                            $crate::strategy::Strategy::generate(&($arg_strat), __rng);
                        __inputs.push($crate::__describe(
                            stringify!($arg_pat),
                            &__value,
                        ));
                        let $arg_pat = __value;
                    )+
                    let __outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(move || {
                            $body
                            $crate::test_runner::TestCaseResult::Pass
                        }),
                    );
                    match __outcome {
                        Ok($crate::test_runner::TestCaseResult::Pass) => {
                            $crate::CaseOutcome::Pass
                        }
                        Ok($crate::test_runner::TestCaseResult::Reject) => {
                            $crate::CaseOutcome::Reject
                        }
                        Err(payload) => $crate::CaseOutcome::Fail {
                            inputs: __inputs,
                            payload,
                        },
                    }
                },
            );
        }
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+)
    };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_ne!($a, $b, $($fmt)+)
    };
}

/// Skips the current case unless the precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return $crate::test_runner::TestCaseResult::Reject;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn regex_subsets_generate_matching_strings() {
        let mut rng = crate::test_runner::TestRng::deterministic("regex");
        for _ in 0..200 {
            let s = crate::strategy::Strategy::generate(&"[a-z][a-z0-9_]{0,12}", &mut rng);
            let mut cs = s.chars();
            let first = cs.next().expect("at least one char");
            assert!(first.is_ascii_lowercase(), "{s}");
            assert!(s.chars().count() <= 13, "{s}");
            for c in cs {
                assert!(
                    c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_',
                    "{s}"
                );
            }
            let p = crate::strategy::Strategy::generate(&"\\PC{0,400}", &mut rng);
            assert!(p.chars().count() <= 400);
            assert!(!p.contains('\n'));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_round_trips(v in prop::collection::vec(any::<u8>(), 0..8),
                             x in 0.25f64..0.75,
                             s in prop::sample::select(vec![1u32, 2, 3])) {
            prop_assume!(v.len() != 7);
            prop_assert!(v.len() < 8);
            prop_assert!((0.25..0.75).contains(&x));
            prop_assert!(s >= 1 && s <= 3);
            prop_assert_eq!(v.len(), v.iter().count());
        }

        #[test]
        fn tuple_args_destructure((a, b) in (0u8..10, 0u8..10)) {
            prop_assert!(a < 10 && b < 10);
        }
    }
}
