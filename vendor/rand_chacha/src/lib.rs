//! Offline stand-in for the `rand_chacha` crate.
//!
//! Implements the genuine ChaCha8 block function (RFC 7539 layout, 8
//! rounds, zero nonce) behind the vendored `rand` traits. The exact word
//! stream differs from upstream `rand_chacha` (which has its own output
//! ordering), but every consumer in this workspace only needs a
//! deterministic, well-mixed, seedable generator.

use rand::{RngCore, SeedableRng};

/// ChaCha stream cipher RNG with 8 rounds.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key + counter state words (RFC 7539 layout).
    state: [u32; 16],
    /// Current keystream block.
    block: [u32; 16],
    /// Next unread word in `block`; 16 means "refill".
    word: usize,
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];
const ROUNDS: usize = 8;

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, base) in working.iter_mut().zip(self.state.iter()) {
            *out = out.wrapping_add(*base);
        }
        self.block = working;
        self.word = 0;
        // 64-bit block counter in words 12..14.
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            state[4 + i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        // Words 12..16 (counter + nonce) start at zero.
        ChaCha8Rng {
            state,
            block: [0; 16],
            word: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.word >= 16 {
            self.refill();
        }
        let w = self.block[self.word];
        self.word += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut rng = ChaCha8Rng::seed_from_u64(42);
            (0..16).map(|_| rng.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut rng = ChaCha8Rng::seed_from_u64(42);
            (0..16).map(|_| rng.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut rng = ChaCha8Rng::seed_from_u64(43);
            (0..16).map(|_| rng.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn stream_is_reasonably_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
        let heads = (0..n).filter(|_| rng.gen_bool(0.25)).count();
        let frac = heads as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.02, "frac {frac}");
    }

    #[test]
    fn known_zero_seed_block() {
        // ChaCha8 with an all-zero key, counter, and nonce: first working
        // word must differ from the constant (mixing happened) and be
        // stable across calls/platforms.
        let mut rng = ChaCha8Rng::from_seed([0u8; 32]);
        let first = rng.next_u32();
        let mut again = ChaCha8Rng::from_seed([0u8; 32]);
        assert_eq!(first, again.next_u32());
        assert_ne!(first, CHACHA_CONSTANTS[0]);
    }
}
