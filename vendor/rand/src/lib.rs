//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! Provides the trait surface the workspace uses: [`RngCore`],
//! [`SeedableRng`] (with `seed_from_u64` via SplitMix64, like rand_core),
//! and the [`Rng`] extension trait with `gen`, `gen_range`, and `gen_bool`.
//! Concrete generators live in the vendored `rand_chacha`.

use std::ops::{Range, RangeInclusive};

/// Core random-number source: a stream of uniform words.
pub trait RngCore {
    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Generators that can be constructed from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Raw seed type, e.g. `[u8; 32]`.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64
    /// (same scheme rand_core documents for this method).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Types [`Rng::gen`] can produce.
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits → [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let unit = <$t as Standard>::draw(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let unit = <$t as Standard>::draw(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}

impl_sample_range_float!(f32, f64);

/// Convenience extension methods, blanket-implemented for every source.
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        <f64 as Standard>::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3u8..9);
            assert!((3..9).contains(&v));
            let w = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counter(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
