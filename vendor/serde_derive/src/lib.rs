//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! item shapes this workspace actually uses — plain structs (named,
//! tuple/newtype) and enums (unit, newtype, tuple, struct variants),
//! optionally with lifetime generics — without depending on `syn`/`quote`
//! (unavailable offline). Parsing walks the raw [`proc_macro::TokenStream`];
//! code generation builds a string and re-parses it.
//!
//! Unsupported (by design): `#[serde(...)]` attributes, type-parameter
//! generics, unions.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// A parsed field: name (or tuple index) and type text.
struct Field {
    name: String,
    ty: String,
}

enum Shape {
    /// `struct S { a: T, … }`
    NamedStruct(Vec<Field>),
    /// `struct S(T, …);` — a single field serializes transparently.
    TupleStruct(Vec<Field>),
    /// `struct S;`
    UnitStruct,
    /// `enum E { … }`
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Tuple(Vec<Field>),
    Named(Vec<Field>),
}

struct Item {
    name: String,
    /// Generics text including angle brackets, e.g. `<'a>`; empty if none.
    generics: String,
    shape: Shape,
}

/// Skips attribute tokens (`#[...]`, including doc comments) starting at
/// `i`; returns the next index.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                i += 2;
            }
            _ => break,
        }
    }
    i
}

/// Skips a visibility qualifier (`pub`, `pub(crate)`, …) starting at `i`.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Splits a token slice on top-level commas, tracking `<`/`>` depth (groups
/// are already atomic in a token stream).
fn split_commas(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur: Vec<TokenTree> = Vec::new();
    let mut angle = 0i32;
    for t in tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    if !cur.is_empty() {
                        out.push(std::mem::take(&mut cur));
                    }
                    continue;
                }
                _ => {}
            }
        }
        cur.push(t.clone());
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Renders tokens back to source text via `TokenStream`'s spacing-aware
/// `Display` (a plain space-join would split lifetimes like `'static`
/// into `' static`, an unterminated char literal).
fn tokens_to_string(tokens: &[TokenTree]) -> String {
    tokens.iter().cloned().collect::<TokenStream>().to_string()
}

/// Parses `name: Type` fields from a brace-group body.
fn parse_named_fields(body: &[TokenTree]) -> Vec<Field> {
    split_commas(body)
        .into_iter()
        .filter_map(|entry| {
            let mut i = skip_attrs(&entry, 0);
            i = skip_vis(&entry, i);
            let name = match entry.get(i) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                _ => return None,
            };
            // Skip the `:`.
            let ty = tokens_to_string(&entry[i + 2..]);
            Some(Field { name, ty })
        })
        .collect()
}

/// Parses tuple-struct / tuple-variant element types from a paren body.
fn parse_tuple_fields(body: &[TokenTree]) -> Vec<Field> {
    split_commas(body)
        .into_iter()
        .enumerate()
        .map(|(idx, entry)| {
            let mut i = skip_attrs(&entry, 0);
            i = skip_vis(&entry, i);
            Field {
                name: idx.to_string(),
                ty: tokens_to_string(&entry[i..]),
            }
        })
        .collect()
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs(&tokens, 0);
    i = skip_vis(&tokens, i);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, got {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected item name, got {other}"),
    };
    i += 1;
    // Optional generics.
    let mut generics = String::new();
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            let mut depth = 0i32;
            let mut parts: Vec<TokenTree> = Vec::new();
            while let Some(t) = tokens.get(i) {
                if let TokenTree::Punct(p) = t {
                    match p.as_char() {
                        '<' => depth += 1,
                        '>' => depth -= 1,
                        _ => {}
                    }
                }
                parts.push(t.clone());
                i += 1;
                if depth == 0 {
                    break;
                }
            }
            generics = tokens_to_string(&parts);
        }
    }
    let shape = match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                Shape::NamedStruct(parse_named_fields(&body))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                Shape::TupleStruct(parse_tuple_fields(&body))
            }
            _ => Shape::UnitStruct,
        },
        "enum" => {
            let Some(TokenTree::Group(g)) = tokens.get(i) else {
                panic!("serde_derive: enum without body");
            };
            let body: Vec<TokenTree> = g.stream().into_iter().collect();
            let variants = split_commas(&body)
                .into_iter()
                .filter_map(|entry| {
                    let j = skip_attrs(&entry, 0);
                    let name = match entry.get(j) {
                        Some(TokenTree::Ident(id)) => id.to_string(),
                        _ => return None,
                    };
                    let shape = match entry.get(j + 1) {
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                            let b: Vec<TokenTree> = g.stream().into_iter().collect();
                            VariantShape::Named(parse_named_fields(&b))
                        }
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                            let b: Vec<TokenTree> = g.stream().into_iter().collect();
                            VariantShape::Tuple(parse_tuple_fields(&b))
                        }
                        _ => VariantShape::Unit,
                    };
                    Some(Variant { name, shape })
                })
                .collect();
            Shape::Enum(variants)
        }
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    };
    Item {
        name,
        generics,
        shape,
    }
}

fn impl_header(item: &Item, trait_name: &str) -> String {
    format!(
        "impl {g} ::serde::{t} for {n} {g}",
        g = item.generics,
        t = trait_name,
        n = item.name,
    )
}

/// `#[derive(Serialize)]` — renders the item into `::serde::Value`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(\"{n}\".to_string(), ::serde::Serialize::to_value(&self.{n}))",
                        n = f.name
                    )
                })
                .collect();
            format!("::serde::Value::Obj(vec![{}])", pairs.join(", "))
        }
        Shape::TupleStruct(fields) if fields.len() == 1 => {
            "::serde::Serialize::to_value(&self.0)".to_owned()
        }
        Shape::TupleStruct(fields) => {
            let items: Vec<String> = fields
                .iter()
                .map(|f| format!("::serde::Serialize::to_value(&self.{})", f.name))
                .collect();
            format!("::serde::Value::Arr(vec![{}])", items.join(", "))
        }
        Shape::UnitStruct => "::serde::Value::Null".to_owned(),
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| match &v.shape {
                    VariantShape::Unit => format!(
                        "Self::{n} => ::serde::Value::Str(\"{n}\".to_string()),",
                        n = v.name
                    ),
                    VariantShape::Tuple(fields) if fields.len() == 1 => format!(
                        "Self::{n}(x0) => ::serde::Value::Obj(vec![(\"{n}\".to_string(), \
                         ::serde::Serialize::to_value(x0))]),",
                        n = v.name
                    ),
                    VariantShape::Tuple(fields) => {
                        let binds: Vec<String> =
                            (0..fields.len()).map(|i| format!("x{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        format!(
                            "Self::{n}({binds}) => ::serde::Value::Obj(vec![(\"{n}\".to_string(), \
                             ::serde::Value::Arr(vec![{items}]))]),",
                            n = v.name,
                            binds = binds.join(", "),
                            items = items.join(", ")
                        )
                    }
                    VariantShape::Named(fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let pairs: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(\"{n}\".to_string(), ::serde::Serialize::to_value({n}))",
                                    n = f.name
                                )
                            })
                            .collect();
                        format!(
                            "Self::{n} {{ {binds} }} => ::serde::Value::Obj(vec![\
                             (\"{n}\".to_string(), ::serde::Value::Obj(vec![{pairs}]))]),",
                            n = v.name,
                            binds = binds.join(", "),
                            pairs = pairs.join(", ")
                        )
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    let code = format!(
        "{header} {{ fn to_value(&self) -> ::serde::Value {{ {body} }} }}",
        header = impl_header(&item, "Serialize"),
    );
    code.parse()
        .expect("serde_derive: generated Serialize impl must parse")
}

/// `#[derive(Deserialize)]` — reconstructs the item from `::serde::Value`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let named_fields = |fields: &[Field], src: &str, ctor: &str| -> String {
        let inits: Vec<String> = fields
            .iter()
            .map(|f| {
                format!(
                    "{n}: <{t} as ::serde::Deserialize>::from_value(::serde::field({src}, \
                     \"{n}\")).map_err(|e| ::serde::de_error(format!(\"{owner}.{n}: {{e}}\")))?,",
                    n = f.name,
                    t = f.ty,
                    src = src,
                    owner = name,
                )
            })
            .collect();
        format!("Ok({ctor} {{ {} }})", inits.join(" "))
    };
    let body = match &item.shape {
        Shape::NamedStruct(fields) => named_fields(fields, "v", name),
        Shape::TupleStruct(fields) if fields.len() == 1 => format!(
            "Ok({name}(<{t} as ::serde::Deserialize>::from_value(v)?))",
            t = fields[0].ty
        ),
        Shape::TupleStruct(fields) => {
            let tys: Vec<String> = fields.iter().map(|f| f.ty.clone()).collect();
            format!(
                "{{ let t = <({tuple},) as ::serde::Deserialize>::from_value(v)?; \
                 Ok({name}({unpack})) }}",
                tuple = tys.join(", "),
                unpack = (0..fields.len())
                    .map(|i| format!("t.{i}"))
                    .collect::<Vec<_>>()
                    .join(", "),
            )
        }
        Shape::UnitStruct => format!("Ok({name})"),
        Shape::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.shape, VariantShape::Unit))
                .map(|v| format!("\"{n}\" => Ok(Self::{n}),", n = v.name))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| match &v.shape {
                    VariantShape::Unit => None,
                    VariantShape::Tuple(fields) if fields.len() == 1 => Some(format!(
                        "\"{n}\" => Ok(Self::{n}(<{t} as ::serde::Deserialize>::from_value(pv)?)),",
                        n = v.name,
                        t = fields[0].ty
                    )),
                    VariantShape::Tuple(fields) => {
                        let tys: Vec<String> = fields.iter().map(|f| f.ty.clone()).collect();
                        Some(format!(
                            "\"{n}\" => {{ let t = <({tuple},) as ::serde::Deserialize>\
                             ::from_value(pv)?; Ok(Self::{n}({unpack})) }},",
                            n = v.name,
                            tuple = tys.join(", "),
                            unpack = (0..fields.len())
                                .map(|i| format!("t.{i}"))
                                .collect::<Vec<_>>()
                                .join(", "),
                        ))
                    }
                    VariantShape::Named(fields) => Some(format!(
                        "\"{n}\" => {body},",
                        n = v.name,
                        body = named_fields(fields, "pv", &format!("Self::{}", v.name)),
                    )),
                })
                .collect();
            format!(
                "match v {{ \
                   ::serde::Value::Str(s) => match s.as_str() {{ \
                     {unit_arms} \
                     other => Err(::serde::de_error(format!(\"unknown {name} variant `{{other}}`\"))), \
                   }}, \
                   ::serde::Value::Obj(pairs) if pairs.len() == 1 => {{ \
                     let (k, pv) = &pairs[0]; \
                     match k.as_str() {{ \
                       {data_arms} \
                       other => Err(::serde::de_error(format!(\"unknown {name} variant `{{other}}`\"))), \
                     }} \
                   }}, \
                   other => Err(::serde::de_error(format!(\"expected {name}, got {{other:?}}\"))), \
                 }}",
                unit_arms = unit_arms.join(" "),
                data_arms = data_arms.join(" "),
                name = name,
            )
        }
    };
    let code = format!(
        "{header} {{ fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, \
         ::serde::DeError> {{ {body} }} }}",
        header = impl_header(&item, "Deserialize"),
    );
    code.parse()
        .expect("serde_derive: generated Deserialize impl must parse")
}
