//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors a minimal replacement with the same import surface the
//! workspace uses: `serde::{Serialize, Deserialize}` derive macros plus
//! trait impls for the primitive and container types that appear in
//! derived structs. Serialization goes through an owned JSON [`Value`]
//! tree; `serde_json` (also vendored) renders and parses that tree.
//!
//! This is intentionally *not* the real serde data model — no visitors,
//! no zero-copy, no custom `#[serde(...)]` attributes. It exists to make
//! `#[derive(Serialize, Deserialize)]` + `serde_json::{to_string,
//! from_str}` work for plain structs and enums.

use std::collections::{BTreeMap, BTreeSet, HashMap};

pub use serde_derive::{Deserialize, Serialize};

/// Owned JSON tree used as the serialization data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number, stored as its literal text so integers round-trip
    /// exactly (u64 values do not all fit in f64).
    Num(String),
    /// JSON string.
    Str(String),
    /// JSON array.
    Arr(Vec<Value>),
    /// JSON object; insertion order is preserved.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Deserialization error: a human-readable mismatch description.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Shorthand constructor used by generated code.
pub fn de_error(msg: impl Into<String>) -> DeError {
    DeError(msg.into())
}

/// The `null` value, usable where a `&'static Value` is needed.
pub const NULL: Value = Value::Null;

/// Field lookup for derived `Deserialize` impls: a missing field reads as
/// `null`, so `Option` fields default to `None` (matching serde's derive).
pub fn field<'v>(v: &'v Value, name: &str) -> &'v Value {
    v.get(name).unwrap_or(&NULL)
}

/// Types that can render themselves into a JSON [`Value`].
pub trait Serialize {
    /// Converts `self` into the JSON data model.
    fn to_value(&self) -> Value;
}

/// Types that can reconstruct themselves from a JSON [`Value`].
pub trait Deserialize: Sized {
    /// Parses `self` out of the JSON data model.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(self.to_string())
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Num(s) => {
                        // Accept a float literal that denotes an integer
                        // (e.g. `3.0`), as real serde_json does for `3`.
                        if let Ok(n) = s.parse::<$t>() {
                            return Ok(n);
                        }
                        s.parse::<f64>()
                            .ok()
                            .filter(|f| f.fract() == 0.0)
                            .map(|f| f as $t)
                            .ok_or_else(|| de_error(format!(
                                "expected {}, got `{s}`", stringify!($t))))
                    }
                    other => Err(de_error(format!(
                        "expected {}, got {other:?}", stringify!($t)))),
                }
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                if self.is_finite() {
                    // `{:?}` prints the shortest representation that
                    // round-trips, e.g. `1.0` rather than `1`.
                    Value::Num(format!("{self:?}"))
                } else {
                    Value::Null
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Num(s) => s
                        .parse::<$t>()
                        .map_err(|_| de_error(format!("bad float `{s}`"))),
                    Value::Null => Ok(<$t>::NAN),
                    other => Err(de_error(format!("expected float, got {other:?}"))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(de_error(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(de_error(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Deserialize for &'static str {
    /// Leaks the parsed string. Real serde cannot target `&'static str` at
    /// all; this stub accepts the leak so derived structs with static-str
    /// fields (small, bounded catalogs) still round-trip.
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            other => Err(de_error(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().expect("one char")),
            other => Err(de_error(format!(
                "expected single-char string, got {other:?}"
            ))),
        }
    }
}

// ---------------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            other => Err(de_error(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = Vec::<T>::from_value(v)?;
        let n = items.len();
        <[T; N]>::try_from(items).map_err(|_| de_error(format!("expected array of {N}, got {n}")))
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident : $i:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$i.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Arr(items) => {
                        let mut it = items.iter();
                        let out = ($(
                            {
                                let _ = $i; // positional marker
                                $t::from_value(
                                    it.next().ok_or_else(|| de_error("tuple too short"))?,
                                )?
                            },
                        )+);
                        Ok(out)
                    }
                    other => Err(de_error(format!("expected tuple array, got {other:?}"))),
                }
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Map keys serialize as JSON object keys; integers use their decimal
/// rendering, matching serde_json's behaviour for integer-keyed maps.
pub trait MapKey: Ord {
    /// Key → object-key string.
    fn to_key(&self) -> String;
    /// Object-key string → key.
    fn from_key(s: &str) -> Result<Self, DeError>
    where
        Self: Sized;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(s: &str) -> Result<Self, DeError> {
        Ok(s.to_owned())
    }
}

macro_rules! impl_map_key_int {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(s: &str) -> Result<Self, DeError> {
                s.parse().map_err(|_| de_error(format!("bad map key `{s}`")))
            }
        }
    )*};
}

impl_map_key_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: MapKey, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Obj(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: MapKey, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Obj(pairs) => pairs
                .iter()
                .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
                .collect(),
            other => Err(de_error(format!("expected object, got {other:?}"))),
        }
    }
}

impl<K: MapKey + std::hash::Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        // Sort for deterministic output.
        let mut pairs: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_key(), v.to_value()))
            .collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Obj(pairs)
    }
}

impl<K: MapKey + std::hash::Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Obj(pairs) => pairs
                .iter()
                .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
                .collect(),
            other => Err(de_error(format!("expected object, got {other:?}"))),
        }
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            other => Err(de_error(format!("expected array, got {other:?}"))),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}
