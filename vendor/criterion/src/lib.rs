//! Offline stand-in for the `criterion` crate.
//!
//! Measures real wall-clock time and prints a plain-text report — no
//! statistics engine, no plotting, no baseline storage. Each benchmark is
//! warmed up briefly, then timed over enough iterations to fill a short
//! measurement window; the report shows mean time per iteration.
//!
//! Environment knobs (all optional):
//! - `CRITERION_WARMUP_MS` — warm-up window per benchmark (default 300).
//! - `CRITERION_MEASURE_MS` — measurement window per benchmark (default 1000).

use std::time::{Duration, Instant};

fn env_ms(name: &str, default_ms: u64) -> Duration {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .map(Duration::from_millis)
        .unwrap_or(Duration::from_millis(default_ms))
}

/// How `iter_batched` amortizes setup cost; the stub runs one setup per
/// routine call regardless of the hint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Routine input is cheap to set up.
    SmallInput,
    /// Routine input is expensive to set up.
    LargeInput,
    /// Each batch is a single routine call.
    PerIteration,
}

/// Collects timing samples for one benchmark.
pub struct Bencher {
    warmup: Duration,
    measure: Duration,
    /// Mean seconds per iteration, filled by `iter`/`iter_batched`.
    result_secs: f64,
    /// Iterations actually measured.
    result_iters: u64,
}

impl Bencher {
    fn new(warmup: Duration, measure: Duration) -> Bencher {
        Bencher {
            warmup,
            measure,
            result_secs: 0.0,
            result_iters: 0,
        }
    }

    /// Times `routine` over the measurement window.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until the window elapses (at least once).
        let start = Instant::now();
        loop {
            std::hint::black_box(routine());
            if start.elapsed() >= self.warmup {
                break;
            }
        }
        // Measurement.
        let mut iters: u64 = 0;
        let start = Instant::now();
        loop {
            std::hint::black_box(routine());
            iters += 1;
            if start.elapsed() >= self.measure {
                break;
            }
        }
        self.result_secs = start.elapsed().as_secs_f64() / iters as f64;
        self.result_iters = iters;
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let start = Instant::now();
        loop {
            let input = setup();
            std::hint::black_box(routine(input));
            if start.elapsed() >= self.warmup {
                break;
            }
        }
        let mut iters: u64 = 0;
        let mut busy = Duration::ZERO;
        let wall = Instant::now();
        loop {
            let input = setup();
            let t0 = Instant::now();
            std::hint::black_box(routine(input));
            busy += t0.elapsed();
            iters += 1;
            if wall.elapsed() >= self.measure {
                break;
            }
        }
        self.result_secs = busy.as_secs_f64() / iters as f64;
        self.result_iters = iters;
    }
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    warmup: Duration,
    measure: Duration,
    /// Substring filter from argv (like real criterion's bench filter).
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warmup: env_ms("CRITERION_WARMUP_MS", 300),
            measure: env_ms("CRITERION_MEASURE_MS", 1000),
            filter: None,
        }
    }
}

impl Criterion {
    /// Reads the benchmark-name filter from the command line, skipping the
    /// flags cargo-bench passes through (`--bench`, `--exact`, ...).
    pub fn configure_from_args(mut self) -> Self {
        self.filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        self
    }

    fn runs(&self, id: &str) -> bool {
        match &self.filter {
            Some(f) => id.contains(f.as_str()),
            None => true,
        }
    }

    fn report(&self, id: &str, b: &Bencher) {
        println!(
            "{id:<40} {:>12}/iter  ({} iterations)",
            format_time(b.result_secs),
            b.result_iters
        );
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        if self.runs(id) {
            let mut b = Bencher::new(self.warmup, self.measure);
            f(&mut b);
            self.report(id, &b);
        }
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_owned(),
        }
    }

    /// Prints the closing line (real criterion prints a summary here).
    pub fn final_summary(&mut self) {
        println!("benchmarks complete");
    }
}

/// A named group of benchmarks; ids are `group/member`.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{id}", self.name);
        if self.parent.runs(&full) {
            let mut b = Bencher::new(self.parent.warmup, self.parent.measure);
            f(&mut b);
            self.parent.report(&full, &b);
        }
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Re-export so `criterion::black_box` works like upstream.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Bundles benchmark functions under one name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Emits `main()` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $( $group(&mut c); )+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        std::env::set_var("CRITERION_WARMUP_MS", "1");
        std::env::set_var("CRITERION_MEASURE_MS", "5");
        let mut c = Criterion::default();
        let mut ran = 0u32;
        c.bench_function("spin", |b| {
            b.iter(|| {
                ran += 1;
                (0..100).sum::<u64>()
            })
        });
        assert!(ran > 0);
        let mut group = c.benchmark_group("g");
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }
}
